#include "exec/superopt.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xpath/axis_kernels.h"

namespace xptc {
namespace exec {
namespace {

constexpr double kEps = 1e-9;

struct SuperoptMetrics {
  obs::Counter& programs;
  obs::Counter& optimized;
  obs::Counter& unchanged;
  obs::Counter& witness_rejects;
  static SuperoptMetrics& Get() {
    obs::Registry& reg = obs::Registry::Default();
    static SuperoptMetrics* m = new SuperoptMetrics{
        reg.counter("superopt.programs"), reg.counter("superopt.optimized"),
        reg.counter("superopt.unchanged"),
        reg.counter("superopt.witness_rejects")};
    return *m;
  }
};

void TraceNote(const char* note) {
  if (obs::TraceNode* cur = obs::QueryTrace::Current()) {
    cur->notes.emplace_back(note);
  }
}

Op ClosureOp(Axis closure) {
  switch (closure) {
    case Axis::kDescendant:
      return Op::kDescFill;
    case Axis::kAncestor:
      return Op::kAncMark;
    default:
      return Op::kSibChain;
  }
}

}  // namespace

double OpWeight(Op op) {
  switch (op) {
    case Op::kTrue:
    case Op::kLabel:
      return 1.0;  // one full-bitset write
    case Op::kNot:
      return 1.0;  // fused NotRange: one pass
    case Op::kAnd:
    case Op::kOr:
      return 2.0;  // copy + in-place op: two passes
    case Op::kAndNot:
    case Op::kOrNot:
      return 1.0;  // fused three-operand kernel: one pass
    case Op::kAxis:
      return 4.0;  // clear + scatter/gather image, not word-parallel
    case Op::kDescFill:
    case Op::kAncMark:
    case Op::kSibChain:
      return 4.0;  // one streamed closure pass — same unit as one kAxis,
                   // but executes once where a star body runs per round
    case Op::kStar:
      return 2.0;  // per-entry seed copies (round work is billed to the
                   // body instructions, which carry the round multiplier)
    case Op::kWithin:
      return 32.0;  // delegated interpreter evaluation
  }
  return 1.0;
}

// ---------------------------------------------------------------------------
// The Superoptimizer works on the pre-regalloc SSA form, re-structured by
// sequence: seq 0 is the main sequence and each kStar instruction refers
// to its body by *sequence id* (exactly the Lowerer's pre-linearization
// shape), so rewrites never have to maintain flat body ranges.

class Superoptimizer {
 public:
  static std::shared_ptr<const Program> Run(
      std::shared_ptr<const Program> base, const SuperoptOptions& options);

 private:
  struct SInstr {
    Instr ins;      // kStar: body_begin = sequence id, body_end unused
    double execs;   // executions per Eval under the cost model
  };

  struct Candidate {
    std::vector<std::vector<SInstr>> seqs;  // seq 0 = main
    int result_vreg = -1;
    int num_vregs = 0;  // upper bound on vreg ids (not necessarily dense)
    double cost = 0;
    int fused = 0, merged = 0, hoisted = 0, sunk = 0, dropped = 0;
    int collapsed = 0;
  };

  struct DefSite {
    int seq = -1;
    int idx = -1;  // -1 with seq >= 0: a kStar's `in`, owned by that body
  };

  struct Analysis {
    std::vector<DefSite> def;      // per vreg
    std::vector<int> uses;         // per vreg read count (+1 for result)
    std::vector<std::vector<int>> use_seqs;  // per vreg: seq of each use
                                             // (result counts as main)
    std::vector<int> parent;       // per seq: owning seq, -1 for main/dead
    std::vector<DefSite> star_of;  // per seq: the owning kStar instruction
  };

  static int Decompose(const std::vector<Instr>& flat, int begin, int end,
                       double mult, const SuperoptOptions& options,
                       const std::vector<int64_t>* observed, Candidate* cand) {
    const int sid = static_cast<int>(cand->seqs.size());
    cand->seqs.emplace_back();
    for (int i = begin; i < end; ++i) {
      SInstr si;
      si.ins = flat[static_cast<size_t>(i)];
      si.execs = observed != nullptr
                     ? static_cast<double>((*observed)[static_cast<size_t>(i)])
                     : mult;
      if (si.ins.op == Op::kStar) {
        const int body =
            Decompose(flat, si.ins.body_begin, si.ins.body_end,
                      mult * options.star_round_estimate, options, observed,
                      cand);
        si.ins.body_begin = body;
        si.ins.body_end = 0;
      }
      cand->seqs[static_cast<size_t>(sid)].push_back(si);
    }
    return sid;
  }

  static double Cost(const Candidate& c) {
    double total = 0;
    for (const auto& seq : c.seqs) {
      for (const SInstr& si : seq) total += si.execs * OpWeight(si.ins.op);
    }
    return total;
  }

  // Deterministic structural serialization: dedup key and sort tiebreak.
  // kWithin expressions are numbered by first appearance (walk order), so
  // keys are stable across processes despite pointer-valued operands.
  static std::string Serialize(const Candidate& c) {
    std::ostringstream os;
    std::unordered_map<const NodeExpr*, int> within_ids;
    for (size_t s = 0; s < c.seqs.size(); ++s) {
      os << "S" << s << ":";
      for (const SInstr& si : c.seqs[s]) {
        const Instr& ins = si.ins;
        os << static_cast<int>(ins.op) << "," << ins.dst << "," << ins.a
           << "," << ins.b << "," << static_cast<int>(ins.axis) << ","
           << ins.label << "," << ins.body_begin << "," << ins.in << ","
           << ins.out;
        if (ins.within != nullptr) {
          const auto it =
              within_ids.emplace(ins.within.get(),
                                 static_cast<int>(within_ids.size()))
                  .first;
          os << ",w" << it->second;
        }
        os << ";";
      }
    }
    os << "R" << c.result_vreg;
    return os.str();
  }

  static Analysis Analyze(const Candidate& c) {
    Analysis a;
    a.def.assign(static_cast<size_t>(c.num_vregs), DefSite{});
    a.uses.assign(static_cast<size_t>(c.num_vregs), 0);
    a.use_seqs.assign(static_cast<size_t>(c.num_vregs), {});
    a.parent.assign(c.seqs.size(), -1);
    a.star_of.assign(c.seqs.size(), DefSite{});
    int use_seq = 0;
    const auto use = [&a, &use_seq](int vreg) {
      if (vreg >= 0) {
        ++a.uses[static_cast<size_t>(vreg)];
        a.use_seqs[static_cast<size_t>(vreg)].push_back(use_seq);
      }
    };
    for (int s = 0; s < static_cast<int>(c.seqs.size()); ++s) {
      use_seq = s;
      for (int i = 0; i < static_cast<int>(c.seqs[static_cast<size_t>(s)].size());
           ++i) {
        const Instr& ins = c.seqs[static_cast<size_t>(s)][static_cast<size_t>(i)].ins;
        if (ins.op == Op::kStar) {
          a.def[static_cast<size_t>(ins.dst)] = {s, i};
          // `in` holds the frontier, rewritten every round: treat it as
          // owned by the body so nothing reading it counts as invariant.
          a.def[static_cast<size_t>(ins.in)] = {ins.body_begin, -1};
          a.parent[static_cast<size_t>(ins.body_begin)] = s;
          a.star_of[static_cast<size_t>(ins.body_begin)] = {s, i};
          use(ins.a);
          use(ins.out);
        } else {
          a.def[static_cast<size_t>(ins.dst)] = {s, i};
          use(ins.a);
          use(ins.b);
        }
      }
    }
    use_seq = 0;  // the result is read after main finishes
    use(c.result_vreg);
    return a;
  }

  // Structural witness: every operand defined before use in execution
  // order, each star's `out` produced inside its own body subtree, every
  // body seq referenced exactly once, result defined. Runs after every
  // applied move; a violation discards the move (superopt.witness_rejects).
  static bool Witness(const Candidate& c) {
    std::vector<char> defined(static_cast<size_t>(c.num_vregs), 0);
    std::vector<char> entered(c.seqs.size(), 0);
    if (c.seqs.empty()) return false;
    if (!WitnessSeq(c, 0, &defined, &entered)) return false;
    return c.result_vreg >= 0 &&
           defined[static_cast<size_t>(c.result_vreg)] != 0;
  }

  static bool WitnessSeq(const Candidate& c, int s, std::vector<char>* defined,
                         std::vector<char>* entered) {
    if (s < 0 || s >= static_cast<int>(c.seqs.size())) return false;
    if ((*entered)[static_cast<size_t>(s)]) return false;  // shared body
    (*entered)[static_cast<size_t>(s)] = 1;
    const auto ok_reg = [&c](int vreg) {
      return vreg >= 0 && vreg < c.num_vregs;
    };
    const auto is_defined = [&](int vreg) {
      return ok_reg(vreg) && (*defined)[static_cast<size_t>(vreg)] != 0;
    };
    for (const SInstr& si : c.seqs[static_cast<size_t>(s)]) {
      const Instr& ins = si.ins;
      switch (ins.op) {
        case Op::kTrue:
          break;
        case Op::kLabel:
          if (ins.label == kInvalidSymbol) return false;
          break;
        case Op::kNot:
        case Op::kAxis:
        case Op::kDescFill:
        case Op::kAncMark:
        case Op::kSibChain:
          if (!is_defined(ins.a)) return false;
          break;
        case Op::kAnd:
        case Op::kOr:
        case Op::kAndNot:
        case Op::kOrNot:
          if (!is_defined(ins.a) || !is_defined(ins.b)) return false;
          break;
        case Op::kWithin:
          if (ins.within == nullptr) return false;
          break;
        case Op::kStar: {
          if (!is_defined(ins.a)) return false;
          if (!ok_reg(ins.dst) || !ok_reg(ins.in) || !ok_reg(ins.out)) {
            return false;
          }
          (*defined)[static_cast<size_t>(ins.dst)] = 1;
          (*defined)[static_cast<size_t>(ins.in)] = 1;
          const bool out_before = is_defined(ins.out);
          if (!WitnessSeq(c, ins.body_begin, defined, entered)) return false;
          // The engine re-reads `out` after each body run; it must be
          // (re)computed inside the body, not inherited from outside.
          if (out_before || !is_defined(ins.out)) return false;
          continue;
        }
      }
      if (!ok_reg(ins.dst)) return false;
      (*defined)[static_cast<size_t>(ins.dst)] = 1;
    }
    return true;
  }

  // --- moves ---------------------------------------------------------------

  // Replaces uses of `from` with `to` everywhere (operands + result).
  static void RewriteUses(Candidate* c, int from, int to) {
    for (auto& seq : c->seqs) {
      for (SInstr& si : seq) {
        if (si.ins.a == from) si.ins.a = to;
        if (si.ins.b == from) si.ins.b = to;
        if (si.ins.op == Op::kStar && si.ins.out == from) si.ins.out = to;
      }
    }
    if (c->result_vreg == from) c->result_vreg = to;
  }

  static void ClearSeqRecursive(Candidate* c, int s) {
    for (const SInstr& si : c->seqs[static_cast<size_t>(s)]) {
      if (si.ins.op == Op::kStar) ClearSeqRecursive(c, si.ins.body_begin);
    }
    c->seqs[static_cast<size_t>(s)].clear();
  }

  static bool SameOperands(const Instr& x, const Instr& y) {
    switch (x.op) {
      case Op::kTrue:
        return true;
      case Op::kLabel:
        return x.label == y.label;
      case Op::kNot:
        return x.a == y.a;
      case Op::kAnd:
      case Op::kOr:  // commutative
        return (x.a == y.a && x.b == y.b) || (x.a == y.b && x.b == y.a);
      case Op::kAndNot:
      case Op::kOrNot:
        return x.a == y.a && x.b == y.b;
      case Op::kAxis:
      case Op::kDescFill:
      case Op::kAncMark:
      case Op::kSibChain:
        return x.axis == y.axis && x.a == y.a;
      case Op::kWithin:
        return x.within.get() == y.within.get();
      case Op::kStar:
        return false;  // loops are never merged
    }
    return false;
  }

  // True iff `vreg` is defined strictly outside the subtree rooted at body
  // sequence `s` (i.e. in an ancestor sequence, by a real instruction —
  // star frontiers are owned by their body and never qualify).
  static bool InvariantFor(int vreg, int s, const Analysis& a) {
    if (vreg < 0) return true;
    const DefSite& d = a.def[static_cast<size_t>(vreg)];
    if (d.seq < 0 || d.idx < 0) return false;
    for (int anc = a.parent[static_cast<size_t>(s)]; anc >= 0;
         anc = a.parent[static_cast<size_t>(anc)]) {
      if (d.seq == anc) return true;
    }
    return false;
  }

  // True iff sequence `s` is `body` or nested (transitively) inside it.
  static bool InBodySubtree(int s, int body, const Analysis& a) {
    for (; s >= 0; s = a.parent[static_cast<size_t>(s)]) {
      if (s == body) return true;
    }
    return false;
  }

  // Enumerates every single-move successor of `c`, in deterministic order.
  static void EnumerateMoves(const Candidate& c, std::vector<Candidate>* out) {
    const Analysis a = Analyze(c);
    const int num_seqs = static_cast<int>(c.seqs.size());

    // fuse: kAnd/kOr with a kNot operand -> kAndNot/kOrNot.
    for (int s = 0; s < num_seqs; ++s) {
      const auto& seq = c.seqs[static_cast<size_t>(s)];
      for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
        const Instr& ins = seq[static_cast<size_t>(i)].ins;
        if (ins.op != Op::kAnd && ins.op != Op::kOr) continue;
        for (const bool not_is_b : {true, false}) {
          const int not_vreg = not_is_b ? ins.b : ins.a;
          const int other = not_is_b ? ins.a : ins.b;
          const DefSite& d = a.def[static_cast<size_t>(not_vreg)];
          if (d.seq < 0 || d.idx < 0) continue;
          const Instr& def_ins =
              c.seqs[static_cast<size_t>(d.seq)][static_cast<size_t>(d.idx)]
                  .ins;
          if (def_ins.op != Op::kNot) continue;
          Candidate nc = c;
          Instr& target = nc.seqs[static_cast<size_t>(s)]
                              [static_cast<size_t>(i)]
                                  .ins;
          target.op = ins.op == Op::kAnd ? Op::kAndNot : Op::kOrNot;
          target.a = other;
          target.b = def_ins.a;
          ++nc.fused;
          out->push_back(std::move(nc));
        }
      }
    }

    // merge: later duplicate collapses onto the earlier same-seq instr.
    for (int s = 0; s < num_seqs; ++s) {
      const auto& seq = c.seqs[static_cast<size_t>(s)];
      for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
        for (int j = i + 1; j < static_cast<int>(seq.size()); ++j) {
          const Instr& x = seq[static_cast<size_t>(i)].ins;
          const Instr& y = seq[static_cast<size_t>(j)].ins;
          if (x.op != y.op || !SameOperands(x, y)) continue;
          Candidate nc = c;
          auto& nseq = nc.seqs[static_cast<size_t>(s)];
          nseq[static_cast<size_t>(i)].execs =
              std::max(nseq[static_cast<size_t>(i)].execs,
                       nseq[static_cast<size_t>(j)].execs);
          const int dead_dst = y.dst;
          nseq.erase(nseq.begin() + j);
          RewriteUses(&nc, dead_dst, x.dst);
          ++nc.merged;
          out->push_back(std::move(nc));
        }
      }
    }

    // drop: unused destination (a dead star takes its body along).
    for (int s = 0; s < num_seqs; ++s) {
      const auto& seq = c.seqs[static_cast<size_t>(s)];
      for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
        const Instr& ins = seq[static_cast<size_t>(i)].ins;
        if (a.uses[static_cast<size_t>(ins.dst)] != 0) continue;
        Candidate nc = c;
        if (ins.op == Op::kStar) ClearSeqRecursive(&nc, ins.body_begin);
        auto& nseq = nc.seqs[static_cast<size_t>(s)];
        nseq.erase(nseq.begin() + i);
        ++nc.dropped;
        out->push_back(std::move(nc));
      }
    }

    // hoist: loop-invariant body instruction moves before its owning star.
    for (int s = 0; s < num_seqs; ++s) {
      if (a.parent[static_cast<size_t>(s)] < 0) continue;
      const DefSite star = a.star_of[static_cast<size_t>(s)];
      const double star_execs =
          c.seqs[static_cast<size_t>(star.seq)][static_cast<size_t>(star.idx)]
              .execs;
      const auto& seq = c.seqs[static_cast<size_t>(s)];
      for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
        const SInstr& si = seq[static_cast<size_t>(i)];
        if (si.ins.op == Op::kStar) continue;  // bodies move only whole
        if (!InvariantFor(si.ins.a, s, a) || !InvariantFor(si.ins.b, s, a)) {
          continue;
        }
        if (si.execs <= star_execs + kEps) continue;  // not an improvement
        Candidate nc = c;
        SInstr moved = nc.seqs[static_cast<size_t>(s)][static_cast<size_t>(i)];
        moved.execs = star_execs;
        auto& body = nc.seqs[static_cast<size_t>(s)];
        body.erase(body.begin() + i);
        auto& parent_seq = nc.seqs[static_cast<size_t>(star.seq)];
        parent_seq.insert(parent_seq.begin() + star.idx, std::move(moved));
        ++nc.hoisted;
        out->push_back(std::move(nc));
      }
    }

    // sink: the dual of hoist — an instruction consumed only inside one
    // star's body subtree moves to the top of that body. Recomputing it
    // per round is sound (operands are single-assignment and defined
    // before the star), and the static model never proposes it: body
    // instructions carry `star_round_estimate >= 1` times the outer
    // multiplier, so sinking only models as a win when a *measured*
    // profile shows the star converging in fewer rounds than the setup
    // work's own execution count — typically a star whose frontier is
    // empty on the served data, where the sunk setup then never runs.
    for (int s = 0; s < num_seqs; ++s) {
      const auto& seq = c.seqs[static_cast<size_t>(s)];
      for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
        const SInstr& si = seq[static_cast<size_t>(i)];
        if (si.ins.op == Op::kStar) continue;  // bodies move only whole
        if (a.uses[static_cast<size_t>(si.ins.dst)] == 0) continue;
        for (int j = i + 1; j < static_cast<int>(seq.size()); ++j) {
          const Instr& star = seq[static_cast<size_t>(j)].ins;
          if (star.op != Op::kStar) continue;
          const int body = star.body_begin;
          bool all_inside = true;
          for (const int u : a.use_seqs[static_cast<size_t>(si.ins.dst)]) {
            if (!InBodySubtree(u, body, a)) {
              all_inside = false;
              break;
            }
          }
          if (!all_inside) continue;
          const auto& body_seq = c.seqs[static_cast<size_t>(body)];
          const double body_execs =
              body_seq.empty() ? 0.0 : body_seq.front().execs;
          if (body_execs + kEps >= si.execs) break;  // not an improvement
          Candidate nc = c;
          SInstr moved = nc.seqs[static_cast<size_t>(s)]
                             [static_cast<size_t>(i)];
          moved.execs = body_execs;
          auto& src = nc.seqs[static_cast<size_t>(s)];
          src.erase(src.begin() + i);
          auto& dst = nc.seqs[static_cast<size_t>(body)];
          dst.insert(dst.begin(), std::move(moved));
          ++nc.sunk;
          out->push_back(std::move(nc));
          break;  // the first containing star is the sink target
        }
      }
    }

    // collapse: a star whose body is the single bare axis step `out :=
    // axis-image(in)` IS the reflexive-transitive closure of that axis —
    // replace the whole loop with the one-pass closure kernel when the
    // axis has one (TransitiveClosureAxis). This is how *warm* PlanCache
    // entries (lowered before the closure ops existed, or whose body only
    // became bare through earlier merges/hoists) pick up the interval
    // kernels on profile-fed re-superoptimization.
    if (axis::ClosureCollapseEnabled()) {
      for (int s = 0; s < num_seqs; ++s) {
        const auto& seq = c.seqs[static_cast<size_t>(s)];
        for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
          const SInstr& si = seq[static_cast<size_t>(i)];
          const Instr& star = si.ins;
          if (star.op != Op::kStar) continue;
          const auto& body = c.seqs[static_cast<size_t>(star.body_begin)];
          if (body.size() != 1) continue;
          const Instr& step = body.front().ins;
          Axis closure;
          if (step.op != Op::kAxis || step.a != star.in ||
              step.dst != star.out ||
              !TransitiveClosureAxis(step.axis, &closure)) {
            continue;
          }
          Candidate nc = c;
          auto& nbody = nc.seqs[static_cast<size_t>(star.body_begin)];
          nbody.clear();
          Instr& target =
              nc.seqs[static_cast<size_t>(s)][static_cast<size_t>(i)].ins;
          target = Instr{};
          target.op = ClosureOp(closure);
          target.axis = closure;
          target.dst = star.dst;
          target.a = star.a;
          ++nc.collapsed;
          out->push_back(std::move(nc));
        }
      }
    }
  }

  // --- relinearization -----------------------------------------------------

  static void CollectLiveSeqs(const Candidate& c, int s,
                              std::vector<int>* order) {
    order->push_back(s);
    for (const SInstr& si : c.seqs[static_cast<size_t>(s)]) {
      if (si.ins.op == Op::kStar) CollectLiveSeqs(c, si.ins.body_begin, order);
    }
  }

  static void RenumberSeq(const Candidate& c, int s, std::vector<int>* remap,
                          int* next) {
    for (const SInstr& si : c.seqs[static_cast<size_t>(s)]) {
      const Instr& ins = si.ins;
      auto assign = [&](int vreg) {
        if ((*remap)[static_cast<size_t>(vreg)] < 0) {
          (*remap)[static_cast<size_t>(vreg)] = (*next)++;
        }
      };
      assign(ins.dst);
      if (ins.op == Op::kStar) {
        assign(ins.in);
        RenumberSeq(c, ins.body_begin, remap, next);
      }
    }
  }

  // Converts the winning candidate back to flat pre-regalloc form: vregs
  // densely renumbered in definition order (the register allocator
  // CHECK-fails on gaps), sequences laid out main-first with star body
  // references rewritten to instruction ranges — mirroring the Lowerer's
  // linearization exactly.
  static Program::Lowered Relinearize(const Candidate& c) {
    std::vector<int> remap(static_cast<size_t>(c.num_vregs), -1);
    int next = 0;
    RenumberSeq(c, 0, &remap, &next);

    std::vector<int> order;  // live seqs, DFS preorder from main
    CollectLiveSeqs(c, 0, &order);
    std::vector<int> offset(c.seqs.size(), -1);
    int at = 0;
    for (const int s : order) {
      offset[static_cast<size_t>(s)] = at;
      at += static_cast<int>(c.seqs[static_cast<size_t>(s)].size());
    }

    Program::Lowered out;
    out.main_end = static_cast<int>(c.seqs[0].size());
    out.num_vregs = next;
    out.result_vreg = remap[static_cast<size_t>(c.result_vreg)];
    out.code.reserve(static_cast<size_t>(at));
    const auto mapped = [&remap](int vreg) {
      return vreg < 0 ? vreg : remap[static_cast<size_t>(vreg)];
    };
    for (const int s : order) {
      for (const SInstr& si : c.seqs[static_cast<size_t>(s)]) {
        Instr ins = si.ins;
        ins.dst = mapped(ins.dst);
        ins.a = mapped(ins.a);
        ins.b = mapped(ins.b);
        ins.in = mapped(ins.in);
        ins.out = mapped(ins.out);
        if (ins.op == Op::kStar) {
          const int body = ins.body_begin;
          ins.body_begin = offset[static_cast<size_t>(body)];
          ins.body_end =
              ins.body_begin +
              static_cast<int>(c.seqs[static_cast<size_t>(body)].size());
        }
        out.code.push_back(std::move(ins));
      }
    }
    return out;
  }
};

std::shared_ptr<const Program> Superoptimizer::Run(
    std::shared_ptr<const Program> base, const SuperoptOptions& options) {
  SuperoptMetrics& metrics = SuperoptMetrics::Get();
  metrics.programs.Inc();
  // Idempotent: an already-rewritten program is final.
  if (base->pre_superopt_ != nullptr) return base;

  Program::Lowered lowered = Program::LowerPlan(base->plan_);
  const std::vector<int64_t>* observed = options.observed_execs;
  if (observed != nullptr && observed->size() != lowered.code.size()) {
    observed = nullptr;
  }
  Candidate initial;
  initial.result_vreg = lowered.result_vreg;
  initial.num_vregs = lowered.num_vregs;
  Decompose(lowered.code, 0, lowered.main_end, 1.0, options, observed,
            &initial);
  initial.cost = Cost(initial);

  // Cost of the program as it stands. Normally identical to `initial`
  // (lowering is deterministic), but `base` may predate a lowering
  // improvement — e.g. it was cached before closure collapse existed, or
  // with the collapse toggled off — and then the fresh lowering is
  // already a win with zero moves. Acceptance is therefore judged against
  // the base program, not against the re-lowering.
  const std::vector<int64_t>* base_observed = options.observed_execs;
  if (base_observed != nullptr &&
      base_observed->size() != base->code_.size()) {
    base_observed = nullptr;
  }
  Candidate existing;
  existing.result_vreg = base->result_reg_;
  existing.num_vregs = base->num_regs_;
  Decompose(base->code_, 0, base->main_end_, 1.0, options, base_observed,
            &existing);
  const double base_cost = Cost(existing);

  std::vector<std::pair<std::string, Candidate>> beam;
  beam.emplace_back(Serialize(initial), initial);
  Candidate best = initial;
  int rounds = 0;
  int candidates_scored = 0;
  for (; rounds < options.max_rounds; ++rounds) {
    std::vector<Candidate> successors;
    for (const auto& entry : beam) {
      EnumerateMoves(entry.second, &successors);
    }
    std::vector<std::pair<std::string, Candidate>> next;
    std::set<std::string> seen;
    for (Candidate& nc : successors) {
      if (!Witness(nc)) {
        metrics.witness_rejects.Inc();
        continue;
      }
      ++candidates_scored;
      nc.cost = Cost(nc);
      std::string key = Serialize(nc);
      if (!seen.insert(key).second) continue;
      next.emplace_back(std::move(key), std::move(nc));
    }
    if (next.empty()) break;
    std::stable_sort(next.begin(), next.end(),
                     [](const auto& x, const auto& y) {
                       if (x.second.cost != y.second.cost) {
                         return x.second.cost < y.second.cost;
                       }
                       return x.first < y.first;
                     });
    if (static_cast<int>(next.size()) > options.beam_width) {
      next.resize(static_cast<size_t>(options.beam_width));
    }
    if (next.front().second.cost < best.cost - kEps) {
      best = next.front().second;
    }
    beam = std::move(next);
  }

  if (best.cost >= base_cost - kEps) {
    metrics.unchanged.Inc();
    TraceNote("superopt: no improving rewrite");
    return base;
  }
  Program::Lowered rewritten = Relinearize(best);
  rewritten.dag_hits = lowered.dag_hits;
  std::shared_ptr<Program> program = Program::Finish(
      base->plan_, base->stats_.ast_nodes, std::move(rewritten));
  std::string error;
  if (!VerifyProgram(*program, &error)) {
    // Belt and braces: the per-move witness should make this unreachable.
    metrics.witness_rejects.Inc();
    metrics.unchanged.Inc();
    TraceNote("superopt: rewrite failed final witness, kept original");
    return base;
  }
  program->superopt_stats_.rounds = rounds;
  program->superopt_stats_.candidates = candidates_scored;
  program->superopt_stats_.fused = best.fused;
  program->superopt_stats_.merged = best.merged;
  program->superopt_stats_.hoisted = best.hoisted;
  program->superopt_stats_.sunk = best.sunk;
  program->superopt_stats_.dropped = best.dropped;
  program->superopt_stats_.collapsed = best.collapsed;
  program->superopt_stats_.cost_before = base_cost;
  program->superopt_stats_.cost_after = best.cost;
  program->pre_superopt_ = std::move(base);
  metrics.optimized.Inc();
  TraceNote("superopt: program rewritten");
  return program;
}

std::shared_ptr<const Program> Superoptimize(
    std::shared_ptr<const Program> base, const SuperoptOptions& options) {
  XPTC_CHECK(base != nullptr);
  return Superoptimizer::Run(std::move(base), options);
}

namespace {

bool VerifyWalk(const Program& program, int begin, int end,
                std::vector<char>* visited, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const std::vector<Instr>& code = program.code();
  if (begin < 0 || end < begin || end > static_cast<int>(code.size())) {
    return fail("instruction range out of bounds");
  }
  const auto ok_reg = [&program](int reg) {
    return reg >= 0 && reg < program.num_regs();
  };
  for (int i = begin; i < end; ++i) {
    if ((*visited)[static_cast<size_t>(i)]) {
      return fail("instruction " + std::to_string(i) + " visited twice");
    }
    (*visited)[static_cast<size_t>(i)] = 1;
    const Instr& ins = code[static_cast<size_t>(i)];
    if (!ok_reg(ins.dst)) {
      return fail("instruction " + std::to_string(i) + ": bad dst register");
    }
    bool need_a = false, need_b = false;
    switch (ins.op) {
      case Op::kTrue:
        break;
      case Op::kLabel:
        if (ins.label == kInvalidSymbol) {
          return fail("instruction " + std::to_string(i) + ": invalid label");
        }
        break;
      case Op::kNot:
      case Op::kAxis:
      case Op::kDescFill:
      case Op::kAncMark:
      case Op::kSibChain:
        need_a = true;
        break;
      case Op::kAnd:
      case Op::kOr:
      case Op::kAndNot:
      case Op::kOrNot:
        need_a = need_b = true;
        break;
      case Op::kWithin:
        if (ins.within == nullptr) {
          return fail("instruction " + std::to_string(i) +
                      ": kWithin without expression");
        }
        break;
      case Op::kStar:
        need_a = true;
        if (!ok_reg(ins.in) || !ok_reg(ins.out)) {
          return fail("instruction " + std::to_string(i) +
                      ": bad star in/out register");
        }
        if (!VerifyWalk(program, ins.body_begin, ins.body_end, visited,
                        error)) {
          return false;
        }
        break;
    }
    if (need_a && !ok_reg(ins.a)) {
      return fail("instruction " + std::to_string(i) + ": bad operand a");
    }
    if (need_b && !ok_reg(ins.b)) {
      return fail("instruction " + std::to_string(i) + ": bad operand b");
    }
  }
  return true;
}

}  // namespace

bool VerifyProgram(const Program& program, std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (program.main_end() < 0 ||
      program.main_end() > static_cast<int>(program.code().size())) {
    return fail("main_end out of bounds");
  }
  if (program.result_reg() < 0 || program.result_reg() >= program.num_regs()) {
    return fail("result register out of bounds");
  }
  std::vector<char> visited(program.code().size(), 0);
  if (!VerifyWalk(program, 0, program.main_end(), &visited, error)) {
    return false;
  }
  for (size_t i = 0; i < visited.size(); ++i) {
    if (!visited[i]) {
      return fail("unreachable instruction (orphaned star body)");
    }
  }
  return true;
}

namespace {

void EstimateWalk(const Program& program, int begin, int end, double mult,
                  const SuperoptOptions& options,
                  const std::vector<int64_t>* observed,
                  std::vector<double>* out) {
  const std::vector<Instr>& code = program.code();
  for (int i = begin; i < end; ++i) {
    const Instr& ins = code[static_cast<size_t>(i)];
    const double execs =
        observed != nullptr
            ? static_cast<double>((*observed)[static_cast<size_t>(i)])
            : mult;
    (*out)[static_cast<size_t>(i)] = execs * OpWeight(ins.op);
    if (ins.op == Op::kStar) {
      EstimateWalk(program, ins.body_begin, ins.body_end,
                   mult * options.star_round_estimate, options, observed, out);
    }
  }
}

}  // namespace

std::vector<double> EstimateInstrCosts(const Program& program,
                                       const SuperoptOptions& options) {
  std::vector<double> out(program.code().size(), 0.0);
  const std::vector<int64_t>* observed = options.observed_execs;
  if (observed != nullptr && observed->size() != out.size()) {
    observed = nullptr;
  }
  EstimateWalk(program, 0, program.main_end(), 1.0, options, observed, &out);
  return out;
}

}  // namespace exec
}  // namespace xptc
