#include "exec/engine.h"

#include <limits>
#include <utility>

#include "common/check.h"
#include "workload/tree_cache.h"
#include "xpath/axis_kernels.h"

namespace xptc {
namespace exec {

ExecEngine::ExecEngine(const Tree& tree, TreeCache* tree_cache)
    : tree_(tree), tree_cache_(tree_cache), n_(tree.size()) {
  XPTC_CHECK(!tree.empty());
  XPTC_CHECK(tree_cache == nullptr || &tree_cache->tree() == &tree)
      << "TreeCache bound to a different tree";
}

ExecEngine::~ExecEngine() = default;

namespace {

// Star-round budget for the hybrid dispatch: one register-machine star
// round costs a few full-bitset word ops (O(n/64) each), one node of the
// one-pass sweep costs ~bit_ops dependent dispatches — so past roughly
// 8 rounds per bit op the sweep wins even counting the abandoned prefix.
// Shallow trees and dense star seeds converge in far fewer rounds and
// never hit the budget; only the adversarial deep-tree/sparse-seed regime
// (where the register machine would go quadratic) falls back.
int64_t StarRoundBudget(const Program& program) {
  return 32 + 8 * static_cast<int64_t>(program.stats().bit_ops);
}

}  // namespace

Bitset ExecEngine::Eval(const Program& program) {
  last_used_downward_ = false;
  if (program.downward() == nullptr) return EvalGeneral(program);
  while (static_cast<int>(regs_.size()) < program.num_regs()) {
    regs_.emplace_back(n_);
  }
  star_rounds_left_ = StarRoundBudget(program);
  if (RunRange(program, 0, program.main_end())) {
    return regs_[static_cast<size_t>(program.result_reg())];
  }
  return EvalDownward(program);
}

Bitset ExecEngine::EvalDownward(const Program& program) {
  XPTC_CHECK(program.downward() != nullptr)
      << "program has no downward compilation";
  last_used_downward_ = true;
  return program.downward()->Run(tree_, &agg_);
}

Bitset ExecEngine::EvalGeneral(const Program& program) {
  last_used_downward_ = false;
  while (static_cast<int>(regs_.size()) < program.num_regs()) {
    regs_.emplace_back(n_);
  }
  star_rounds_left_ = std::numeric_limits<int64_t>::max();
  RunRange(program, 0, program.main_end());
  return regs_[static_cast<size_t>(program.result_reg())];
}

const Bitset& ExecEngine::LabelSet(Symbol label) {
  auto it = label_refs_.find(label);
  if (it != label_refs_.end()) return *it->second;
  const Bitset* set;
  if (tree_cache_ != nullptr) {
    set = &tree_cache_->LabelSet(label);
  } else {
    Bitset local(n_);
    for (NodeId v = 0; v < n_; ++v) {
      if (tree_.Label(v) == label) local.Set(v);
    }
    set = &local_labels_.emplace(label, std::move(local)).first->second;
  }
  label_refs_.emplace(label, set);
  return *set;
}

bool ExecEngine::RunRange(const Program& program, int begin, int end) {
  const std::vector<Instr>& code = program.code();
  for (int i = begin; i < end; ++i) {
    const Instr& ins = code[static_cast<size_t>(i)];
    Bitset& dst = regs_[static_cast<size_t>(ins.dst)];
    switch (ins.op) {
      case Op::kTrue:
        dst.SetAll();
        break;
      case Op::kLabel:
        dst.CopyRange(LabelSet(ins.label), 0, n_);
        break;
      case Op::kNot:
        dst.CopyRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        dst.Flip();
        break;
      case Op::kAnd:
        dst.CopyRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        dst &= regs_[static_cast<size_t>(ins.b)];
        break;
      case Op::kOr:
        dst.CopyRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        dst |= regs_[static_cast<size_t>(ins.b)];
        break;
      case Op::kAxis:
        dst.ResetAll();  // the kernels require a clear output window
        AxisImageInto(tree_, ins.axis, regs_[static_cast<size_t>(ins.a)], 0,
                      n_, &dst);
        break;
      case Op::kStar: {
        // Semi-naive closure: dst accumulates everything reached, the body
        // maps the newly-reached frontier (`in`) one step to `out`, and
        // only genuinely new nodes re-enter the loop. The allocator keeps
        // dst/in/out in distinct registers and anything read inside the
        // body live across the whole loop.
        const Bitset& seed = regs_[static_cast<size_t>(ins.a)];
        Bitset& frontier = regs_[static_cast<size_t>(ins.in)];
        Bitset& step = regs_[static_cast<size_t>(ins.out)];
        dst.CopyRange(seed, 0, n_);
        frontier.CopyRange(seed, 0, n_);
        while (frontier.Any()) {
          if (--star_rounds_left_ < 0) return false;
          if (!RunRange(program, ins.body_begin, ins.body_end)) return false;
          step.Subtract(dst);
          dst |= step;
          frontier.CopyRange(step, 0, n_);
        }
        break;
      }
      case Op::kWithin: {
        if (w_scratch_ == nullptr) {
          w_scratch_ = std::make_unique<EvalScratch>(tree_, tree_cache_);
        }
        Evaluator ev(tree_, w_scratch_.get());
        dst = ev.EvalNode(*ins.within);
        break;
      }
    }
  }
  return true;
}

}  // namespace exec
}  // namespace xptc
