#include "exec/engine.h"

#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "workload/tree_cache.h"
#include "xpath/ast.h"
#include "xpath/axis_kernels.h"

namespace xptc {
namespace exec {

ExecEngine::ExecEngine(const Tree& tree, TreeCache* tree_cache)
    : tree_(tree), tree_cache_(tree_cache), n_(tree.size()) {
  XPTC_CHECK(!tree.empty());
  XPTC_CHECK(tree_cache == nullptr || &tree_cache->tree() == &tree)
      << "TreeCache bound to a different tree";
  if (tree_cache != nullptr) calibration_ = tree_cache->calibration();
}

ExecEngine::~ExecEngine() = default;

namespace {

// Star-round budget for the hybrid dispatch: one register-machine star
// round costs a few full-bitset word ops (O(n/64) each), one node of the
// one-pass sweep costs ~bit_ops dependent dispatches — so past roughly
// 8 rounds per bit op the sweep wins even counting the abandoned prefix.
// Shallow trees and dense star seeds converge in far fewer rounds and
// never hit the budget; only the adversarial deep-tree/sparse-seed regime
// (where the register machine would go quadratic) falls back.
int64_t StarRoundBudget(const Program& program) {
  return 32 + 8 * static_cast<int64_t>(program.stats().bit_ops);
}

// Process-wide execution counters, fetched once (registry lookups lock;
// the hot path pays relaxed atomic adds, flushed once per Eval).
struct ExecMetrics {
  obs::Counter& evals;
  obs::Counter& instrs;
  obs::Counter& star_rounds;
  obs::Counter& disp_register;
  obs::Counter& disp_fallback;
  obs::Counter& disp_downward;
  obs::Counter& disp_general;
  obs::Counter& deadline_expired;
  static ExecMetrics& Get() {
    obs::Registry& reg = obs::Registry::Default();
    static ExecMetrics* m = new ExecMetrics{
        reg.counter("exec.evals"),
        reg.counter("exec.instrs_executed"),
        reg.counter("exec.star_rounds"),
        reg.counter("exec.dispatch.register_machine"),
        reg.counter("exec.dispatch.downward_fallback"),
        reg.counter("exec.dispatch.downward_direct"),
        reg.counter("exec.dispatch.general"),
        reg.counter("exec.deadline_expired")};
    return *m;
  }
};

obs::Histogram& EvalFlame() {
  static obs::Histogram* h =
      &obs::Registry::Default().histogram("exec.eval_ns");
  return *h;
}

}  // namespace

const char* ExecEngine::DispatchName(RunInfo::Dispatch dispatch) {
  switch (dispatch) {
    case RunInfo::Dispatch::kRegisterMachine: return "register_machine";
    case RunInfo::Dispatch::kDownwardFallback: return "downward_fallback";
    case RunInfo::Dispatch::kDownwardDirect: return "downward_direct";
    case RunInfo::Dispatch::kGeneral: return "general";
  }
  return "unknown";
}

int64_t ExecEngine::SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ExecEngine::DeadlineExpired() const {
  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_relaxed)) {
    return true;
  }
  return deadline_ns_ != 0 && SteadyNowNs() >= deadline_ns_;
}

void ExecEngine::BeginRun(const Program& program, RunInfo::Dispatch dispatch,
                          int64_t budget) {
  last_run_.dispatch = dispatch;
  last_run_.star_rounds_used = 0;
  last_run_.star_round_budget = budget;
  last_run_.instrs_executed = 0;
  last_run_.deadline_expired = false;
  // assign() reuses capacity, so steady-state evals stay allocation-free
  // once the vector has grown to the largest program seen.
  last_run_.instr_execs.assign(program.code().size(), 0);
}

void ExecEngine::FinishRun(const Bitset* result) {
  ExecMetrics& metrics = ExecMetrics::Get();
  metrics.instrs.Add(last_run_.instrs_executed);
  metrics.star_rounds.Add(last_run_.star_rounds_used);
  if (last_run_.deadline_expired) {
    metrics.deadline_expired.Inc();
    // Flight-recorder post-mortem breadcrumb: which request blew its
    // deadline mid-execution, and how far it got. Attribution comes from
    // the thread's ScopedRequestId (set by the server worker / batch task).
    obs::Journal::Record(obs::JournalCode::kDeadlineExec,
                         static_cast<uint64_t>(last_run_.star_rounds_used));
  }
  switch (last_run_.dispatch) {
    case RunInfo::Dispatch::kRegisterMachine:
      metrics.disp_register.Inc();
      break;
    case RunInfo::Dispatch::kDownwardFallback:
      metrics.disp_fallback.Inc();
      break;
    case RunInfo::Dispatch::kDownwardDirect:
      metrics.disp_downward.Inc();
      break;
    case RunInfo::Dispatch::kGeneral:
      metrics.disp_general.Inc();
      break;
  }
  obs::TraceNode* cur = obs::QueryTrace::Current();
  if (cur == nullptr) return;
  cur->notes.push_back(std::string("dispatch: ") +
                       DispatchName(last_run_.dispatch));
  if (last_run_.deadline_expired) {
    cur->notes.push_back("deadline expired after " +
                         std::to_string(last_run_.star_rounds_used) +
                         " star rounds; run abandoned");
  }
  if (last_run_.dispatch == RunInfo::Dispatch::kDownwardFallback) {
    cur->notes.push_back(
        "star-round budget blown at " +
        std::to_string(last_run_.star_round_budget) +
        " rounds; abandoned register machine, re-ran one-pass sweep");
  }
  cur->SetAttr("star_rounds_used", last_run_.star_rounds_used);
  cur->SetAttr("star_round_budget", last_run_.star_round_budget);
  cur->SetAttr("instrs_executed", last_run_.instrs_executed);
  if (result != nullptr) cur->SetAttr("result_count", result->Count());
}

Bitset ExecEngine::Eval(const Program& program) {
  obs::TraceSpan span("exec.eval", &EvalFlame());
  ExecMetrics::Get().evals.Inc();
  last_used_downward_ = false;
  if (program.downward() == nullptr) {
    BeginRun(program, RunInfo::Dispatch::kGeneral, 0);
    if (DeadlineExpired()) return AbandonRun();
    while (static_cast<int>(regs_.size()) < program.num_regs()) {
      regs_.emplace_back(n_);
    }
    star_rounds_left_ = std::numeric_limits<int64_t>::max();
    if (!RunRange(program, 0, program.main_end())) return AbandonRun();
    Bitset& result = regs_[static_cast<size_t>(program.result_reg())];
    FinishRun(&result);
    return result;
  }
  while (static_cast<int>(regs_.size()) < program.num_regs()) {
    regs_.emplace_back(n_);
  }
  const int64_t budget = StarRoundBudget(program);
  BeginRun(program, RunInfo::Dispatch::kRegisterMachine, budget);
  if (DeadlineExpired()) return AbandonRun();
  star_rounds_left_ = budget;
  if (RunRange(program, 0, program.main_end())) {
    Bitset& result = regs_[static_cast<size_t>(program.result_reg())];
    FinishRun(&result);
    return result;
  }
  // The deadline probe fired mid-run: the request is already late, so the
  // fallback sweep would only add more late work. Abandon instead.
  if (last_run_.deadline_expired) return AbandonRun();
  // Budget blown: abandon the register machine (its partial instruction
  // counts stay in last_run_ — the EXPLAIN dump shows the abandoned
  // prefix) and re-run as the unconditionally-linear sweep.
  last_run_.dispatch = RunInfo::Dispatch::kDownwardFallback;
  last_used_downward_ = true;
  Bitset result = program.downward()->Run(tree_, &agg_);
  FinishRun(&result);
  return result;
}

Bitset ExecEngine::AbandonRun() {
  last_run_.deadline_expired = true;
  FinishRun(nullptr);
  return Bitset(n_);
}

Bitset ExecEngine::EvalDownward(const Program& program) {
  XPTC_CHECK(program.downward() != nullptr)
      << "program has no downward compilation";
  obs::TraceSpan span("exec.eval", &EvalFlame());
  ExecMetrics::Get().evals.Inc();
  BeginRun(program, RunInfo::Dispatch::kDownwardDirect, 0);
  last_run_.instr_execs.clear();
  last_used_downward_ = true;
  if (DeadlineExpired()) return AbandonRun();
  Bitset result = program.downward()->Run(tree_, &agg_);
  FinishRun(&result);
  return result;
}

Bitset ExecEngine::EvalGeneral(const Program& program) {
  obs::TraceSpan span("exec.eval", &EvalFlame());
  ExecMetrics::Get().evals.Inc();
  BeginRun(program, RunInfo::Dispatch::kGeneral, 0);
  last_used_downward_ = false;
  if (DeadlineExpired()) return AbandonRun();
  while (static_cast<int>(regs_.size()) < program.num_regs()) {
    regs_.emplace_back(n_);
  }
  star_rounds_left_ = std::numeric_limits<int64_t>::max();
  if (!RunRange(program, 0, program.main_end())) return AbandonRun();
  Bitset& result = regs_[static_cast<size_t>(program.result_reg())];
  FinishRun(&result);
  return result;
}

const Bitset& ExecEngine::LabelSet(Symbol label) {
  auto it = label_refs_.find(label);
  if (it != label_refs_.end()) return *it->second;
  const Bitset* set;
  if (tree_cache_ != nullptr) {
    set = &tree_cache_->LabelSet(label);
  } else {
    Bitset local(n_);
    for (NodeId v = 0; v < n_; ++v) {
      if (tree_.Label(v) == label) local.Set(v);
    }
    set = &local_labels_.emplace(label, std::move(local)).first->second;
  }
  label_refs_.emplace(label, set);
  return *set;
}

bool ExecEngine::RunRange(const Program& program, int begin, int end) {
  const std::vector<Instr>& code = program.code();
  for (int i = begin; i < end; ++i) {
    const Instr& ins = code[static_cast<size_t>(i)];
    ++last_run_.instrs_executed;
    ++last_run_.instr_execs[static_cast<size_t>(i)];
    Bitset& dst = regs_[static_cast<size_t>(ins.dst)];
    switch (ins.op) {
      case Op::kTrue:
        dst.SetAll();
        break;
      case Op::kLabel:
        dst.CopyRange(LabelSet(ins.label), 0, n_);
        break;
      case Op::kNot:
        dst.NotRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        break;
      case Op::kAnd:
        dst.CopyRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        dst &= regs_[static_cast<size_t>(ins.b)];
        break;
      case Op::kOr:
        dst.CopyRange(regs_[static_cast<size_t>(ins.a)], 0, n_);
        dst |= regs_[static_cast<size_t>(ins.b)];
        break;
      case Op::kAndNot:
        dst.AndNotRange(regs_[static_cast<size_t>(ins.a)],
                        regs_[static_cast<size_t>(ins.b)], 0, n_);
        break;
      case Op::kOrNot:
        dst.OrNotRange(regs_[static_cast<size_t>(ins.a)],
                       regs_[static_cast<size_t>(ins.b)], 0, n_);
        break;
      case Op::kAxis:
        dst.ResetAll();  // the kernels require a clear output window
        AxisImageInto(tree_, ins.axis, regs_[static_cast<size_t>(ins.a)], 0,
                      n_, &dst, calibration_);
        // Per-axis-kernel node touches: the size of the produced image,
        // keyed by axis. Only counted (and only paid — CountRange is
        // O(n/64)) when a trace is active on this thread.
        if (obs::TraceNode* cur = obs::QueryTrace::Current()) {
          cur->AddAttr(std::string("axis.") + AxisToString(ins.axis) +
                           ".touches",
                       dst.CountRange(0, n_));
        }
        break;
      case Op::kDescFill:
      case Op::kAncMark:
      case Op::kSibChain: {
        // Collapsed star: dst := seed ∪ closure-image(seed), one streamed
        // kernel pass instead of an O(depth)-round fixpoint loop.
        const Bitset& seed = regs_[static_cast<size_t>(ins.a)];
        dst.ResetAll();
        AxisImageInto(tree_, ins.axis, seed, 0, n_, &dst, calibration_);
        dst.OrRange(seed, 0, n_);
        if (obs::TraceNode* cur = obs::QueryTrace::Current()) {
          cur->AddAttr(std::string("axis.") + AxisToString(ins.axis) +
                           ".touches",
                       dst.CountRange(0, n_));
        }
        break;
      }
      case Op::kStar: {
        // Semi-naive closure: dst accumulates everything reached, the body
        // maps the newly-reached frontier (`in`) one step to `out`, and
        // only genuinely new nodes re-enter the loop. The allocator keeps
        // dst/in/out in distinct registers and anything read inside the
        // body live across the whole loop.
        const Bitset& seed = regs_[static_cast<size_t>(ins.a)];
        Bitset& frontier = regs_[static_cast<size_t>(ins.in)];
        Bitset& step = regs_[static_cast<size_t>(ins.out)];
        dst.CopyRange(seed, 0, n_);
        frontier.CopyRange(seed, 0, n_);
        while (frontier.Any()) {
          ++last_run_.star_rounds_used;
          if (--star_rounds_left_ < 0) return false;
          // Deadline probe (see SetDeadline): star rounds are the only
          // statically unbounded work in a run, so one clock read per
          // round bounds enforcement lag to a single round's work.
          if (DeadlineExpired()) {
            last_run_.deadline_expired = true;
            return false;
          }
          if (!RunRange(program, ins.body_begin, ins.body_end)) return false;
          // Fixpoint probe: the final round always produces no new nodes,
          // and this early-exit subset check detects that in one pass
          // (stopping at the first new word) instead of the full
          // subtract / or / copy / any sequence below.
          if (step.IsSubsetOf(dst)) break;
          step.Subtract(dst);
          dst |= step;
          frontier.CopyRange(step, 0, n_);
        }
        break;
      }
      case Op::kWithin: {
        // W delegation runs a whole memoised interpreter pass; probe once
        // before paying for it.
        if (DeadlineExpired()) {
          last_run_.deadline_expired = true;
          return false;
        }
        if (w_scratch_ == nullptr) {
          w_scratch_ = std::make_unique<EvalScratch>(tree_, tree_cache_);
        }
        Evaluator ev(tree_, w_scratch_.get());
        dst = ev.EvalNode(*ins.within);
        break;
      }
    }
  }
  return true;
}

}  // namespace exec
}  // namespace xptc
