#ifndef XPTC_TESTING_ORACLE_H_
#define XPTC_TESTING_ORACLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/alphabet.h"
#include "common/bitset.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "tree/tree.h"
#include "xpath/ast.h"
#include "xpath/fragment.h"

namespace xptc {
namespace testing {

/// The answer type every oracle is adapted to: the set of nodes of the
/// tree selected by a unary query. This is the common denominator of the
/// repo's pipelines, and T1 is exactly the statement that they all agree
/// on it.
using SelectedSet = Bitset;

/// Declarative description of what an oracle is total on (the
/// fragment-totality matrix of DESIGN.md §9) plus its cost gates. An
/// oracle runs on a case iff the query lies in `total_on` (and in the
/// downward / NTWA-compilable fragment when the flags say so) and the case
/// is within the cost bounds.
struct OracleProfile {
  std::string name;

  /// Largest dialect of the hierarchy the oracle is total on.
  Dialect total_on = Dialect::kRegularXPathW;

  /// Additional fragment restrictions orthogonal to the dialect axis.
  bool downward_only = false;    // IsDownwardNode must hold
  bool compilable_only = false;  // XPathToNtwaCompiler::CheckSupported

  /// Cost gates (0 = unbounded): expensive formalisms (naive O(n³), FO
  /// model checking, automata compilation) are gated to the case sizes
  /// where they are affordable at fuzzing rates.
  int max_tree_nodes = 0;
  int max_query_size = 0;
};

/// One evaluation pipeline adapted behind the registry interface.
class Oracle {
 public:
  virtual ~Oracle() = default;

  const OracleProfile& profile() const { return profile_; }
  const std::string& name() const { return profile_.name; }

  /// Fragment + cost gate; the default implementation evaluates the
  /// profile literally. True means `Run` has declared itself total here —
  /// a residual NotSupported/OutOfRange from `Run` is tolerated (static
  /// gates may over-approximate, e.g. DFTA state blow-up), but any other
  /// error on a handled case is itself a finding.
  virtual bool Handles(const Tree& tree, const NodeExpr& query) const;

  /// The selected set of `query` on `tree`.
  virtual Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) = 0;

  /// `Run` wrapped in this oracle's flame histogram
  /// (`oracle.<name>.run_ns`, timing gated on XPTC_OBS) and run counter
  /// (`oracle.<name>.runs`), and — when a trace is active — a trace span
  /// named after the oracle. Every registry call site runs through this.
  Result<SelectedSet> TimedRun(const Tree& tree, const NodePtr& query);

 protected:
  explicit Oracle(OracleProfile profile) : profile_(std::move(profile)) {}

  OracleProfile profile_;

 private:
  // Lazily-fetched registry metrics (stable references; see TimedRun).
  obs::Histogram* flame_ = nullptr;
  obs::Counter* runs_counter_ = nullptr;
};

/// A cross-check failure: two oracles that both declared themselves total
/// on the case returned different sets (or `other` failed outright).
struct Disagreement {
  std::string reference;  // oracle whose answer is `expected`
  std::string other;      // oracle whose answer is `actual`
  SelectedSet expected;
  SelectedSet actual;
  Status error;  // non-OK iff `other` errored on a handled case

  /// One-line human-readable description (node ids of the symmetric
  /// difference, or the error).
  std::string Describe() const;
};

/// Ordered collection of oracles with the cross-checking policy: on each
/// case the first applicable oracle is the reference and every other
/// applicable oracle is compared against it bit for bit (agreement is
/// transitive, so reference-vs-each is equivalent to all pairs).
class OracleRegistry {
 public:
  OracleRegistry() = default;
  OracleRegistry(const OracleRegistry&) = delete;
  OracleRegistry& operator=(const OracleRegistry&) = delete;

  void Register(std::unique_ptr<Oracle> oracle);

  int size() const { return static_cast<int>(oracles_.size()); }
  const std::vector<std::unique_ptr<Oracle>>& oracles() const {
    return oracles_;
  }
  Oracle* Find(std::string_view name) const;

  /// Cross-checks one case; nullopt means every applicable oracle agreed.
  std::optional<Disagreement> Check(const Tree& tree, const NodePtr& query);

  /// Cross-checks a specific oracle pair (used by the shrinker to re-test
  /// candidates against exactly the pair that originally disagreed).
  /// Returns false when either oracle does not handle the case.
  bool PairDisagrees(Oracle* reference, Oracle* other, const Tree& tree,
                     const NodePtr& query);

  /// Targeted mode: runs only `candidate` against the first *other*
  /// applicable oracle (the reference chain), instead of all pairs — the
  /// cheap way to hammer one new engine with a long campaign. nullopt when
  /// the candidate or no reference handles the case, or they agree.
  std::optional<Disagreement> CheckCandidate(const Tree& tree,
                                             const NodePtr& query,
                                             Oracle* candidate);

  /// Cumulative campaign counters (not thread-safe; the fuzzer is
  /// single-threaded — the concurrency harness lives in stress.h).
  struct Stats {
    int64_t checks = 0;       // Check() calls
    int64_t comparisons = 0;  // oracle-vs-reference comparisons
    int64_t soft_skips = 0;   // residual NotSupported/OutOfRange from Run
    std::map<std::string, int64_t> runs;  // per-oracle Run() count
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  std::vector<std::unique_ptr<Oracle>> oracles_;
  Stats stats_;
};

/// Options for the default registry: every pipeline of the repo, adapted.
struct DefaultRegistryOptions {
  /// Include the expensive logic/automata oracles (FO model checker, NTWA
  /// compiler, DFTA conversion).
  bool include_heavy = true;

  /// Include the concurrent BatchEngine oracle (spawns a small worker
  /// pool once, shared across cases).
  bool include_batch = true;

  /// Cost-gate ceilings for the heavy oracles; the defaults keep a
  /// 100k-case campaign in tens of seconds.
  int fo_max_tree_nodes = 8;
  int fo_max_query_size = 9;
  int ntwa_max_tree_nodes = 12;
  int ntwa_max_query_size = 10;
  int dfta_max_tree_nodes = 12;
  int dfta_max_query_size = 10;
};

/// Builds the ten-pipeline registry:
///
///   name   | pipeline                              | total on
///   -------+---------------------------------------+--------------------
///   naive  | eval_naive (explicit relations)       | RegXPath(W)
///   sets   | Evaluator (word-level kernel engine)  | RegXPath(W)
///   seed   | SeedEvaluator (frozen baseline)       | RegXPath(W)
///   batch  | BatchEngine (parallel throughput path)| RegXPath(W)
///   exec   | compiled bytecode register machine    | RegXPath(W)
///   sexec  | superoptimized bytecode (beam search) | RegXPath(W)
///   dexec  | one-pass downward bit-program engine  | downward fragment
///   fo     | xpath_to_fo + FO(MTC) model checker   | RegXPath(W), gated
///   ntwa   | XPathToNtwaCompiler + EvalAll         | compilable frag.
///   dfta   | DownwardQueryToDfta + subtree Accepts | downward compilable
///
/// `alphabet` must outlive the registry (the automata oracles intern
/// marked twin symbols into it).
std::unique_ptr<OracleRegistry> MakeDefaultRegistry(
    Alphabet* alphabet, const DefaultRegistryOptions& options = {});

/// Synthetic one-line-bug oracles for mutation-testing the harness itself
/// (DESIGN.md §9's mutation check, automated): each mutant mis-evaluates
/// one construct the way a plausible single-line evaluator bug would, so
/// campaigns against a mutant must produce a disagreement that the
/// shrinker reduces to a minimal repro.
enum class Mutation {
  kAndAsOr,      // φ ∧ ψ evaluated as φ ∨ ψ
  kStarAsPlus,   // p* loses reflexivity (evaluated as p+)
  kDropWithin,   // W φ evaluated as φ (wrong off the downward fragment)
};

const char* MutationToString(Mutation mutation);

/// A mutant of the naive reference carrying the given bug.
std::unique_ptr<Oracle> MakeMutantOracle(Mutation mutation);

}  // namespace testing
}  // namespace xptc

#endif  // XPTC_TESTING_ORACLE_H_
