#ifndef XPTC_TESTING_CORPUS_H_
#define XPTC_TESTING_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/alphabet.h"
#include "common/result.h"
#include "tree/tree.h"

namespace xptc {
namespace testing {

/// One replayable differential case. The serialised form is ONE line of
/// three tab-separated fields
///
///     <seed>\t<xml>\t<query>\n
///
/// where `seed` is the decimal 64-bit case seed it was derived from
/// (provenance only — replay never re-runs the generators), `xml` is the
/// tree as a single-line XML document, and `query` is the node expression
/// in the concrete syntax of xpath/parser.h. Case files (`*.case`) may
/// carry any number of `#`-prefixed comment lines (provenance: which
/// oracle pair disagreed, campaign flags, shrink stats) before the case
/// line; blank lines are ignored. Exactly one case per file.
struct CorpusCase {
  uint64_t seed = 0;
  std::string xml;
  std::string query;
};

/// Single-line XML serialisation (`<a><b/></a>`): `tree/xml.h`'s WriteXml
/// pretty-prints across lines, which the one-line case format cannot use.
/// Output re-parses with ParseXml to an equal tree.
std::string CompactXml(const Tree& tree, const Alphabet& alphabet);

/// The case line, without trailing newline.
std::string FormatCaseLine(const CorpusCase& c);

/// Parses a case line (the inverse of FormatCaseLine).
Result<CorpusCase> ParseCaseLine(const std::string& line);

/// Reads a `.case` file: skips comments/blank lines, requires exactly one
/// case line.
Result<CorpusCase> LoadCaseFile(const std::string& path);

/// Writes a `.case` file: `comment` (may be multi-line) is emitted as
/// `#`-prefixed lines above the case line.
Status WriteCaseFile(const std::string& path, const CorpusCase& c,
                     const std::string& comment = "");

/// All `*.case` files under `dir` (non-recursive), sorted by filename for
/// deterministic replay order. Returns (path, case) pairs.
Result<std::vector<std::pair<std::string, CorpusCase>>> LoadCorpusDir(
    const std::string& dir);

/// Materialises the case: parses the XML into a tree over `*alphabet`.
/// (The query string is left to the caller — oracle adapters parse it so
/// parse *errors* are themselves findings.)
Result<Tree> CaseTree(const CorpusCase& c, Alphabet* alphabet);

}  // namespace testing
}  // namespace xptc

#endif  // XPTC_TESTING_CORPUS_H_
