#ifndef XPTC_TESTING_FUZZER_H_
#define XPTC_TESTING_FUZZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/alphabet.h"
#include "testing/corpus.h"
#include "testing/oracle.h"
#include "testing/shrink.h"
#include "tree/tree.h"
#include "xpath/ast.h"

namespace xptc {
namespace testing {

/// Generation targets of a campaign: the dialect hierarchy, the downward
/// fragment, the NTWA-compilable fragment, and a mix of all of them (each
/// case draws its target uniformly).
enum class FuzzFragment {
  kCore,
  kRegular,
  kRegularW,
  kDownward,
  kCompilable,
  kAll,
};

const char* FuzzFragmentToString(FuzzFragment fragment);
std::optional<FuzzFragment> FuzzFragmentFromString(std::string_view name);

struct FuzzOptions {
  /// Campaign seed; every case is a pure function of (options, case seed),
  /// and case seed i is a pure function of (seed, i) — so any single case
  /// can be re-derived without replaying the campaign.
  uint64_t seed = 1;

  /// Budgets: stop after this many cases (0 = unbounded) or this many
  /// wall-clock seconds (0 = unbounded). At least one must be positive.
  int64_t max_cases = 0;
  double max_seconds = 0.0;

  FuzzFragment fragment = FuzzFragment::kAll;

  /// Per-case size draws: trees get 1..max_tree_nodes nodes over
  /// num_labels labels; queries get generator depth 1..max_query_depth.
  int max_tree_nodes = 24;
  int num_labels = 4;
  int max_query_depth = 4;

  /// When true, half of the cases take a deep-tree profile instead: shape
  /// drawn from {chain, caterpillar} and size from [max_tree_nodes,
  /// 8 * max_tree_nodes]. Depth ≈ nodes is the closure axis kernels' worst
  /// regime (one interval/streamed pass vs an O(depth)-round fixpoint),
  /// and the uniform shape/size draw above under-samples it badly.
  bool deep_tree_bias = false;

  /// Stop the campaign after this many findings (each is shrunk first).
  int max_findings = 8;

  /// When non-empty, targeted mode: only the named oracle runs as the
  /// candidate on each case, compared against the first other applicable
  /// oracle (OracleRegistry::CheckCandidate) — a cheap way to point a long
  /// campaign at one engine. Must name a registered oracle.
  std::string candidate;

  /// When non-empty, every shrunk finding is written there as a
  /// `finding-<case seed>.case` file with provenance comments.
  std::string corpus_dir;
};

/// One derived case (before oracle evaluation).
struct FuzzCase {
  uint64_t case_seed = 0;
  FuzzFragment fragment = FuzzFragment::kAll;  // resolved, never kAll
  Tree tree;
  NodePtr query;
};

/// One confirmed, shrunk cross-check failure.
struct Finding {
  uint64_t case_seed = 0;
  std::string reference;  // oracle pair that disagreed
  std::string other;
  std::string description;  // Disagreement::Describe of the original case
  CorpusCase original;      // as generated
  CorpusCase shrunk;        // after delta debugging
  ShrinkStats shrink;
};

struct CampaignResult {
  int64_t cases = 0;
  double seconds = 0.0;
  std::vector<Finding> findings;
};

/// The differential fuzzing loop: derive case → cross-check every
/// applicable oracle pair (via OracleRegistry::Check) → on disagreement,
/// shrink against exactly the pair that disagreed and record/persist the
/// finding. Single-threaded by design (the concurrency harness is
/// testing/stress.h); fully deterministic given (options, registry).
class Fuzzer {
 public:
  /// `registry` and `alphabet` must outlive the fuzzer.
  Fuzzer(OracleRegistry* registry, Alphabet* alphabet, FuzzOptions options);

  /// Case seed of campaign index `i` (random-access, pure).
  static uint64_t CaseSeedAt(uint64_t campaign_seed, int64_t index);

  /// Derives case `i`'s (fragment, tree, query) as a pure function of its
  /// case seed. Exposed for replaying one case without the campaign loop.
  FuzzCase DeriveCase(uint64_t case_seed) const;

  CampaignResult Run();

 private:
  std::optional<Finding> CheckOne(const FuzzCase& fuzz_case);

  OracleRegistry* registry_;
  Alphabet* alphabet_;
  FuzzOptions options_;
  Oracle* candidate_ = nullptr;  // resolved from options_.candidate
  std::vector<Symbol> labels_;
};

/// Replays a corpus case against a registry: parses the XML and the query
/// (parse failures are errors — corpus cases are well-formed by
/// construction) and cross-checks all applicable oracles. nullopt = all
/// agreed.
Result<std::optional<Disagreement>> ReplayCase(OracleRegistry* registry,
                                               Alphabet* alphabet,
                                               const CorpusCase& c);

/// Mutation self-check (DESIGN.md §9): for each synthetic one-line-bug
/// mutant, runs a campaign of a real oracle against the mutant and asserts
/// the harness (a) finds a disagreement and (b) shrinks it small. This is
/// the automated form of the manual "inject a bug, watch it get caught"
/// acceptance test.
struct SelfCheckReport {
  Mutation mutation;
  bool found = false;
  int64_t cases = 0;  // cases until the first finding (or the budget)
  Finding finding;    // meaningful iff `found`
};

/// `max_cases` bounds each mutant's campaign. Reports one entry per
/// mutation, in enum order.
std::vector<SelfCheckReport> RunSelfCheck(Alphabet* alphabet, uint64_t seed,
                                          int64_t max_cases = 20000);

}  // namespace testing
}  // namespace xptc

#endif  // XPTC_TESTING_FUZZER_H_
