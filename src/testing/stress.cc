#include "testing/stress.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/alphabet.h"
#include "common/bitset.h"
#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "tree/generate.h"
#include "workload/batch.h"
#include "workload/plan_cache.h"
#include "workload/tree_cache.h"
#include "xpath/ast.h"
#include "xpath/engine.h"
#include "xpath/eval.h"
#include "xpath/generator.h"

namespace xptc {
namespace testing {

StressReport RunConcurrencyStress(const StressOptions& options) {
  XPTC_CHECK_GT(options.num_threads, 0);
  XPTC_CHECK_GT(options.num_trees, 0);
  XPTC_CHECK_GT(options.num_queries, 0);

  Alphabet alphabet;
  Rng rng(options.seed);
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 4);

  // Shared workload: documents of varied shapes...
  std::vector<std::shared_ptr<const Tree>> trees;
  for (int t = 0; t < options.num_trees; ++t) {
    TreeGenOptions tree_options;
    tree_options.num_nodes = rng.NextInt(2, options.max_tree_nodes);
    tree_options.shape = static_cast<TreeShape>(rng.NextBelow(7));
    Rng tree_rng = rng.Fork();
    trees.push_back(std::make_shared<const Tree>(
        GenerateTree(tree_options, labels, &tree_rng)));
  }

  // ... and query texts biased toward `W` (the memo under contention).
  QueryGenOptions query_options;
  query_options.max_depth = 3;
  query_options.require_within = true;
  std::vector<std::string> texts;
  for (int q = 0; q < options.num_queries; ++q) {
    if (q % 4 == 0) query_options.require_within = !query_options.require_within;
    Rng query_rng = rng.Fork();
    texts.push_back(NodeToString(
        *GenerateNode(query_options, labels, &query_rng), alphabet));
  }

  // Sequential pre-pass: parse every text once (all symbols are interned
  // after this — Alphabet::Intern is not thread-safe, so no new label may
  // be minted once threads start) and compute the expected answers.
  std::vector<Query> queries;
  for (const std::string& text : texts) {
    queries.push_back(Query::Parse(text, &alphabet).ValueOrDie());
  }
  std::vector<std::vector<Bitset>> expected;
  for (const auto& tree : trees) {
    std::vector<Bitset> row;
    for (const Query& query : queries) row.push_back(query.Select(*tree));
    expected.push_back(std::move(row));
  }

  // The shared contended state.
  BatchEngine engine;
  for (const auto& tree : trees) engine.AddTree(tree);
  PlanCache plan_cache(static_cast<size_t>(options.plan_cache_capacity));

  std::atomic<int64_t> evaluations{0};
  // Shared target of the obs::Histogram merge-under-concurrency check:
  // client threads Merge their per-thread histograms into this one while
  // other threads are still merging and the driver is still Observing.
  obs::Histogram merged_hist;
  std::mutex report_mu;
  StressReport report;
  const auto record_mismatch = [&](const std::string& description) {
    std::lock_guard<std::mutex> lock(report_mu);
    ++report.mismatches;
    if (report.first_mismatch.empty()) report.first_mismatch = description;
  };

  const auto client = [&](int id, uint64_t client_seed) {
    Rng client_rng(client_seed);
    // Per-thread histogram (no contention while observing); merged into
    // the shared one when the thread finishes.
    obs::Histogram local_hist;
    // Per-thread scratch, lazily bound per tree, attached to the engine's
    // shared TreeCaches (EvalScratch is single-thread; the cache behind it
    // is the contended part).
    std::vector<std::unique_ptr<EvalScratch>> scratch(trees.size());
    for (int it = 0; it < options.iterations_per_thread; ++it) {
      const int t = static_cast<int>(client_rng.NextBelow(trees.size()));
      const int q = static_cast<int>(client_rng.NextBelow(texts.size()));
      Bitset got;
      if (client_rng.NextBool(0.5)) {
        // Path A: shared PlanCache (LRU churn) + shared TreeCache scratch.
        auto parsed = plan_cache.Parse(texts[static_cast<size_t>(q)],
                                       &alphabet);
        if (!parsed.ok()) {
          record_mismatch("thread " + std::to_string(id) +
                          ": plan cache parse failed: " +
                          parsed.status().ToString());
          continue;
        }
        auto& slot = scratch[static_cast<size_t>(t)];
        if (slot == nullptr) {
          TreeCache* cache = engine.tree_cache(t).get();
          slot = std::make_unique<EvalScratch>(cache->tree(), cache);
        }
        got = (*parsed.ValueOrDie()).Select(*trees[static_cast<size_t>(t)],
                                            slot.get());
      } else {
        // Path B: plain pre-parsed query, fresh local state.
        got = queries[static_cast<size_t>(q)].Select(
            *trees[static_cast<size_t>(t)]);
      }
      evaluations.fetch_add(1, std::memory_order_relaxed);
      local_hist.Observe(got.Count());
      if (!(got == expected[static_cast<size_t>(t)][static_cast<size_t>(q)])) {
        record_mismatch("thread " + std::to_string(id) + ": tree " +
                        std::to_string(t) + ", query '" +
                        texts[static_cast<size_t>(q)] + "' diverged");
      }
    }
    // Concurrent with other clients' merges and the driver's Observes.
    merged_hist.Merge(local_hist);
  };

  std::vector<std::thread> threads;
  Rng seed_rng = rng.Fork();
  for (int id = 0; id < options.num_threads; ++id) {
    threads.emplace_back(client, id, seed_rng.Next());
  }

  // Whole-matrix sweeps from the driver, concurrent with the clients (the
  // documented contract: Run vs Run vs external TreeCache users).
  for (int sweep = 0; sweep < options.batch_sweeps; ++sweep) {
    const std::vector<std::vector<Bitset>> got = engine.Run(queries);
    for (size_t t = 0; t < got.size(); ++t) {
      for (size_t q = 0; q < got[t].size(); ++q) {
        evaluations.fetch_add(1, std::memory_order_relaxed);
        merged_hist.Observe(got[t][q].Count());
        if (!(got[t][q] == expected[t][q])) {
          record_mismatch("batch sweep " + std::to_string(sweep) + ": tree " +
                          std::to_string(t) + ", query '" + texts[q] +
                          "' diverged");
        }
      }
    }
  }

  for (std::thread& thread : threads) thread.join();

  report.evaluations = evaluations.load();
  report.plan_cache_hits = static_cast<int64_t>(plan_cache.stats().hits);
  report.plan_cache_evictions =
      static_cast<int64_t>(plan_cache.stats().evictions);
  // Merge invariants, checked after all writers quiesced: no observation
  // was lost or duplicated, and the buckets account for every observation.
  report.histogram_count = merged_hist.count();
  int64_t bucket_sum = 0;
  for (int k = 0; k < obs::Histogram::kBuckets; ++k) {
    bucket_sum += merged_hist.bucket(k);
  }
  report.histogram_ok = report.histogram_count == report.evaluations &&
                        bucket_sum == report.histogram_count;
  return report;
}

}  // namespace testing
}  // namespace xptc
