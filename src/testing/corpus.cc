#include "testing/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "tree/xml.h"

namespace xptc {
namespace testing {

namespace {

void CompactXmlNode(const Tree& tree, const Alphabet& alphabet, NodeId v,
                    std::string* out) {
  // Iterative preorder with an explicit close stack: corpus trees are
  // usually tiny, but shrinker inputs can be arbitrary caller trees and
  // this writer must never be the thing that overflows.
  struct Frame {
    NodeId node;
    bool closing;
  };
  std::vector<Frame> stack = {{v, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const std::string& name = alphabet.Name(tree.Label(frame.node));
    if (frame.closing) {
      out->append("</").append(name).append(">");
      continue;
    }
    if (tree.IsLeaf(frame.node)) {
      out->append("<").append(name).append("/>");
      continue;
    }
    out->append("<").append(name).append(">");
    stack.push_back({frame.node, true});
    const std::vector<NodeId> children = tree.ChildrenOf(frame.node);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }
}

}  // namespace

std::string CompactXml(const Tree& tree, const Alphabet& alphabet) {
  std::string out;
  if (!tree.empty()) CompactXmlNode(tree, alphabet, tree.root(), &out);
  return out;
}

std::string FormatCaseLine(const CorpusCase& c) {
  return std::to_string(c.seed) + "\t" + c.xml + "\t" + c.query;
}

Result<CorpusCase> ParseCaseLine(const std::string& line) {
  const size_t tab1 = line.find('\t');
  if (tab1 == std::string::npos) {
    return Status::InvalidArgument("case line: missing first tab separator");
  }
  const size_t tab2 = line.find('\t', tab1 + 1);
  if (tab2 == std::string::npos) {
    return Status::InvalidArgument("case line: missing second tab separator");
  }
  if (line.find('\t', tab2 + 1) != std::string::npos) {
    return Status::InvalidArgument("case line: more than three fields");
  }
  CorpusCase c;
  const std::string seed_text = line.substr(0, tab1);
  if (seed_text.empty() ||
      seed_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("case line: seed is not a decimal number: '" +
                                   seed_text + "'");
  }
  try {
    c.seed = std::stoull(seed_text);
  } catch (...) {
    return Status::InvalidArgument("case line: seed out of 64-bit range: '" +
                                   seed_text + "'");
  }
  c.xml = line.substr(tab1 + 1, tab2 - tab1 - 1);
  c.query = line.substr(tab2 + 1);
  if (c.xml.empty()) {
    return Status::InvalidArgument("case line: empty xml field");
  }
  if (c.query.empty()) {
    return Status::InvalidArgument("case line: empty query field");
  }
  return c;
}

Result<CorpusCase> LoadCaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open case file: " + path);
  }
  std::string line;
  bool found = false;
  CorpusCase c;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (found) {
      return Status::InvalidArgument("more than one case line in " + path);
    }
    XPTC_ASSIGN_OR_RETURN(c, ParseCaseLine(line));
    found = true;
  }
  if (!found) {
    return Status::InvalidArgument("no case line in " + path);
  }
  return c;
}

Status WriteCaseFile(const std::string& path, const CorpusCase& c,
                     const std::string& comment) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot write case file: " + path);
  }
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) {
      out << "# " << line << "\n";
    }
  }
  out << FormatCaseLine(c) << "\n";
  out.flush();
  if (!out) {
    return Status::InvalidArgument("write failed for case file: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, CorpusCase>>> LoadCorpusDir(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("not a directory: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::InvalidArgument("cannot list directory: " + dir + ": " +
                                   ec.message());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::pair<std::string, CorpusCase>> out;
  for (const std::string& path : paths) {
    XPTC_ASSIGN_OR_RETURN(CorpusCase c, LoadCaseFile(path));
    out.emplace_back(path, std::move(c));
  }
  return out;
}

Result<Tree> CaseTree(const CorpusCase& c, Alphabet* alphabet) {
  return ParseXml(c.xml, alphabet);
}

}  // namespace testing
}  // namespace xptc
