#include "testing/shrink.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"

namespace xptc {
namespace testing {

Tree DeleteSubtree(const Tree& tree, NodeId v) {
  XPTC_CHECK(!tree.empty() && v != tree.root())
      << "DeleteSubtree: cannot delete the root";
  TreeBuilder builder;
  struct Frame {
    NodeId node;
    bool closing;
  };
  std::vector<Frame> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.closing) {
      builder.End();
      continue;
    }
    if (frame.node == v) continue;  // drop the whole subtree
    builder.Begin(tree.Label(frame.node));
    stack.push_back({frame.node, true});
    const std::vector<NodeId> children = tree.ChildrenOf(frame.node);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, false});
    }
  }
  return std::move(builder).Finish().ValueOrDie();
}

std::vector<PathPtr> PathShrinkCandidates(const PathPtr& path) {
  std::vector<PathPtr> out;
  switch (path->op) {
    case PathOp::kAxis:
      // `self` is the bottom of the path lattice; nothing strictly smaller.
      break;
    case PathOp::kSeq:
    case PathOp::kUnion: {
      out.push_back(path->left);
      out.push_back(path->right);
      for (const PathPtr& l : PathShrinkCandidates(path->left)) {
        out.push_back(path->op == PathOp::kSeq ? MakeSeq(l, path->right)
                                               : MakeUnion(l, path->right));
      }
      for (const PathPtr& r : PathShrinkCandidates(path->right)) {
        out.push_back(path->op == PathOp::kSeq ? MakeSeq(path->left, r)
                                               : MakeUnion(path->left, r));
      }
      break;
    }
    case PathOp::kFilter: {
      out.push_back(path->left);  // drop the predicate
      for (const PathPtr& l : PathShrinkCandidates(path->left)) {
        out.push_back(MakeFilter(l, path->pred));
      }
      for (const NodePtr& p : NodeShrinkCandidates(path->pred)) {
        out.push_back(MakeFilter(path->left, p));
      }
      break;
    }
    case PathOp::kStar: {
      out.push_back(MakeAxis(Axis::kSelf));  // the reflexive part alone
      out.push_back(path->left);             // one unrolling
      for (const PathPtr& l : PathShrinkCandidates(path->left)) {
        out.push_back(MakeStar(l));
      }
      break;
    }
  }
  return out;
}

std::vector<NodePtr> NodeShrinkCandidates(const NodePtr& node) {
  std::vector<NodePtr> out;
  if (node->op != NodeOp::kTrue) out.push_back(MakeTrue());
  switch (node->op) {
    case NodeOp::kLabel:
    case NodeOp::kTrue:
      break;
    case NodeOp::kNot:
    case NodeOp::kWithin: {
      out.push_back(node->left);
      for (const NodePtr& l : NodeShrinkCandidates(node->left)) {
        out.push_back(node->op == NodeOp::kNot ? MakeNot(l) : MakeWithin(l));
      }
      break;
    }
    case NodeOp::kAnd:
    case NodeOp::kOr: {
      out.push_back(node->left);
      out.push_back(node->right);
      for (const NodePtr& l : NodeShrinkCandidates(node->left)) {
        out.push_back(node->op == NodeOp::kAnd ? MakeAnd(l, node->right)
                                               : MakeOr(l, node->right));
      }
      for (const NodePtr& r : NodeShrinkCandidates(node->right)) {
        out.push_back(node->op == NodeOp::kAnd ? MakeAnd(node->left, r)
                                               : MakeOr(node->left, r));
      }
      break;
    }
    case NodeOp::kSome: {
      for (const PathPtr& p : PathShrinkCandidates(node->path)) {
        out.push_back(MakeSome(p));
      }
      break;
    }
  }
  return out;
}

namespace {

/// One sweep of each shrinking pass, greedily committing the first
/// candidate on which the failure still reproduces. Returns the number of
/// committed steps. Every committed step strictly decreases a monotone
/// measure — tree node count for hoist/delete, count of nodes not yet
/// labelled `collapse_label` for relabel, query AST size for the query
/// pass — so sweeping to a fixpoint terminates even without the step cap.
int SweepOnce(Tree* tree, NodePtr* query, const FailurePredicate& still_fails,
              Symbol collapse_label, int budget) {
  int steps = 0;
  const auto spend = [&]() { return ++steps > budget; };

  // Pass 1: hoist — replace the whole tree by one of its proper subtrees
  // (smallest first, so a deep 1-node witness is found in one commit).
  for (bool hoisted = true; hoisted && steps < budget;) {
    hoisted = false;
    std::vector<NodeId> nodes;
    for (NodeId v = 1; v < tree->size(); ++v) nodes.push_back(v);
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return tree->SubtreeSize(a) < tree->SubtreeSize(b);
    });
    for (NodeId v : nodes) {
      Tree candidate = tree->ExtractSubtree(v);
      if (still_fails(candidate, *query)) {
        *tree = std::move(candidate);
        if (spend()) return steps;
        hoisted = true;
        break;
      }
    }
  }

  // Pass 2: subtree deletion (largest first: fast early progress).
  for (bool deleted = true; deleted && steps < budget;) {
    deleted = false;
    std::vector<NodeId> nodes;
    for (NodeId v = 1; v < tree->size(); ++v) nodes.push_back(v);
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return tree->SubtreeSize(a) > tree->SubtreeSize(b);
    });
    for (NodeId v : nodes) {
      Tree candidate = DeleteSubtree(*tree, v);
      if (still_fails(candidate, *query)) {
        *tree = std::move(candidate);
        if (spend()) return steps;
        deleted = true;
        break;  // ids shifted; recompute the candidate order
      }
    }
  }

  // Pass 3: label collapse toward `collapse_label`.
  for (NodeId v = 0; v < tree->size() && steps < budget; ++v) {
    if (tree->Label(v) == collapse_label) continue;
    Tree candidate = tree->RelabelNode(v, collapse_label);
    if (still_fails(candidate, *query)) {
      *tree = std::move(candidate);
      if (spend()) return steps;
    }
  }

  // Pass 4: query AST shrinking, greedy first-improvement restarted after
  // each commit (candidates are stale once the root changes). Only
  // strictly smaller candidates are committed, so this terminates.
  for (bool shrunk = true; shrunk && steps < budget;) {
    shrunk = false;
    for (const NodePtr& candidate : NodeShrinkCandidates(*query)) {
      if (NodeSize(*candidate) >= NodeSize(**query)) continue;
      if (still_fails(*tree, candidate)) {
        *query = candidate;
        if (spend()) return steps;
        shrunk = true;
        break;
      }
    }
  }

  return steps;
}

}  // namespace

ShrunkCase ShrinkCounterexample(const Tree& tree, const NodePtr& query,
                                const FailurePredicate& still_fails,
                                Symbol collapse_label, int max_steps) {
  XPTC_CHECK(still_fails(tree, query))
      << "ShrinkCounterexample: the input case does not fail";
  ShrunkCase result{tree, query, {}};
  result.stats.tree_nodes_before = tree.size();
  result.stats.query_size_before = NodeSize(*query);

  // Interleave the passes to a global fixpoint: deleting tree nodes can
  // unlock query shrinks and vice versa.
  int total = 0;
  while (total < max_steps) {
    const int steps = SweepOnce(&result.tree, &result.query, still_fails,
                                collapse_label, max_steps - total);
    total += steps;
    if (steps == 0) break;
  }

  result.stats.steps = total;
  result.stats.tree_nodes_after = result.tree.size();
  result.stats.query_size_after = NodeSize(*result.query);
  return result;
}

}  // namespace testing
}  // namespace xptc
