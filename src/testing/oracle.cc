#include "testing/oracle.h"

#include <set>
#include <sstream>
#include <utility>

#include "common/threadpool.h"
#include "compile/compile.h"
#include "compile/to_dfta.h"
#include "exec/engine.h"
#include "exec/program.h"
#include "exec/superopt.h"
#include "logic/fo_eval.h"
#include "logic/xpath_to_fo.h"
#include "obs/trace.h"
#include "workload/batch.h"
#include "xpath/engine.h"
#include "xpath/eval.h"
#include "xpath/eval_naive.h"
#include "xpath/eval_seed.h"

namespace xptc {
namespace testing {

namespace {

/// Dialect containment along the paper's hierarchy (Core ⊂ Regular ⊂
/// Regular(W)).
bool DialectWithin(Dialect inner, Dialect outer) {
  return static_cast<int>(inner) <= static_cast<int>(outer);
}

/// The label universe a compiled automaton must be total over: every label
/// of the tree plus every label the query mentions.
std::vector<Symbol> CaseUniverse(const Tree& tree, const NodeExpr& query) {
  std::set<Symbol> labels;
  for (NodeId v = 0; v < tree.size(); ++v) labels.insert(tree.Label(v));
  CollectNodeLabels(query, &labels);
  return std::vector<Symbol>(labels.begin(), labels.end());
}

}  // namespace

bool Oracle::Handles(const Tree& tree, const NodeExpr& query) const {
  if (!DialectWithin(ClassifyNode(query), profile_.total_on)) return false;
  if (profile_.downward_only && !IsDownwardNode(query)) return false;
  if (profile_.compilable_only &&
      !XPathToNtwaCompiler::CheckSupported(query).ok()) {
    return false;
  }
  if (profile_.max_tree_nodes > 0 && tree.size() > profile_.max_tree_nodes) {
    return false;
  }
  if (profile_.max_query_size > 0 &&
      NodeSize(query) > profile_.max_query_size) {
    return false;
  }
  return true;
}

Result<SelectedSet> Oracle::TimedRun(const Tree& tree, const NodePtr& query) {
  if (flame_ == nullptr) {
    obs::Registry& reg = obs::Registry::Default();
    flame_ = &reg.histogram("oracle." + name() + ".run_ns");
    runs_counter_ = &reg.counter("oracle." + name() + ".runs");
  }
  runs_counter_->Inc();
  obs::TraceSpan span(name().c_str(), flame_);
  return Run(tree, query);
}

std::string Disagreement::Describe() const {
  std::ostringstream out;
  out << other << " vs " << reference << ": ";
  if (!error.ok()) {
    out << "error on handled case: " << error.ToString();
    return out.str();
  }
  out << "selected sets differ at nodes {";
  bool first = true;
  const int n = expected.size();
  for (NodeId v = 0; v < n; ++v) {
    if (expected.Get(v) != actual.Get(v)) {
      if (!first) out << ",";
      first = false;
      out << v << (expected.Get(v) ? "-" : "+");
    }
  }
  out << "} (+ = extra, - = missing in " << other << ")";
  return out.str();
}

void OracleRegistry::Register(std::unique_ptr<Oracle> oracle) {
  oracles_.push_back(std::move(oracle));
}

Oracle* OracleRegistry::Find(std::string_view name) const {
  for (const auto& oracle : oracles_) {
    if (oracle->name() == name) return oracle.get();
  }
  return nullptr;
}

std::optional<Disagreement> OracleRegistry::Check(const Tree& tree,
                                                  const NodePtr& query) {
  ++stats_.checks;
  Oracle* reference = nullptr;
  std::optional<SelectedSet> expected;
  for (const auto& oracle : oracles_) {
    if (!oracle->Handles(tree, *query)) continue;
    ++stats_.runs[oracle->name()];
    Result<SelectedSet> got = oracle->TimedRun(tree, query);
    if (!got.ok()) {
      // Static gates may over-approximate what Run can actually do
      // (state-space blow-ups); anything else is a finding.
      if (got.status().IsNotSupported() || got.status().IsOutOfRange()) {
        ++stats_.soft_skips;
        continue;
      }
      Disagreement d;
      d.reference = reference ? reference->name() : "(none)";
      d.other = oracle->name();
      if (expected.has_value()) d.expected = *expected;
      d.error = got.status();
      return d;
    }
    if (reference == nullptr) {
      reference = oracle.get();
      expected = std::move(got).ValueOrDie();
      continue;
    }
    ++stats_.comparisons;
    const SelectedSet& actual = got.ValueOrDie();
    if (!(actual == *expected)) {
      Disagreement d;
      d.reference = reference->name();
      d.other = oracle->name();
      d.expected = *expected;
      d.actual = actual;
      return d;
    }
  }
  return std::nullopt;
}

bool OracleRegistry::PairDisagrees(Oracle* reference, Oracle* other,
                                   const Tree& tree, const NodePtr& query) {
  if (!reference->Handles(tree, *query) || !other->Handles(tree, *query)) {
    return false;
  }
  stats_.runs[reference->name()]++;
  stats_.runs[other->name()]++;
  Result<SelectedSet> expected = reference->TimedRun(tree, query);
  if (!expected.ok()) return false;
  Result<SelectedSet> actual = other->TimedRun(tree, query);
  if (!actual.ok()) {
    // An unexpected hard error still counts as a disagreement so error
    // cases shrink too; residual fragment softness does not.
    return !(actual.status().IsNotSupported() ||
             actual.status().IsOutOfRange());
  }
  ++stats_.comparisons;
  return !(expected.ValueOrDie() == actual.ValueOrDie());
}

std::optional<Disagreement> OracleRegistry::CheckCandidate(
    const Tree& tree, const NodePtr& query, Oracle* candidate) {
  ++stats_.checks;
  if (!candidate->Handles(tree, *query)) return std::nullopt;
  for (const auto& oracle : oracles_) {
    if (oracle.get() == candidate || !oracle->Handles(tree, *query)) continue;
    ++stats_.runs[oracle->name()];
    Result<SelectedSet> expected = oracle->TimedRun(tree, query);
    if (!expected.ok()) {
      if (expected.status().IsNotSupported() ||
          expected.status().IsOutOfRange()) {
        ++stats_.soft_skips;
        continue;  // try the next oracle as reference
      }
      Disagreement d;
      d.reference = candidate->name();
      d.other = oracle->name();
      d.error = expected.status();
      return d;
    }
    ++stats_.runs[candidate->name()];
    Result<SelectedSet> actual = candidate->TimedRun(tree, query);
    if (!actual.ok()) {
      if (actual.status().IsNotSupported() || actual.status().IsOutOfRange()) {
        ++stats_.soft_skips;
        return std::nullopt;
      }
      Disagreement d;
      d.reference = oracle->name();
      d.other = candidate->name();
      d.expected = std::move(expected).ValueOrDie();
      d.error = actual.status();
      return d;
    }
    ++stats_.comparisons;
    if (!(actual.ValueOrDie() == expected.ValueOrDie())) {
      Disagreement d;
      d.reference = oracle->name();
      d.other = candidate->name();
      d.expected = std::move(expected).ValueOrDie();
      d.actual = std::move(actual).ValueOrDie();
      return d;
    }
    return std::nullopt;  // agreed with the reference
  }
  return std::nullopt;  // no reference applied
}

namespace {

// ---------------------------------------------------------------------------
// The pipeline adapters.

class NaiveOracle : public Oracle {
 public:
  NaiveOracle()
      : Oracle({.name = "naive",
                .total_on = Dialect::kRegularXPathW,
                // O(n³) per star; keep it to the sizes fuzzing uses.
                .max_tree_nodes = 96}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    return EvalNodeNaive(tree, *query);
  }
};

class SetsOracle : public Oracle {
 public:
  SetsOracle()
      : Oracle({.name = "sets", .total_on = Dialect::kRegularXPathW}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    return EvalNodeSet(tree, *query);
  }
};

class SeedOracle : public Oracle {
 public:
  SeedOracle()
      : Oracle({.name = "seed",
                .total_on = Dialect::kRegularXPathW,
                // Quadratic-ish W handling; bounded like naive.
                .max_tree_nodes = 96}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    return SeedEvalNodeSet(tree, *query);
  }
};

/// Runs each case through the full throughput path: Query::FromExpr (the
/// simplifier), a BatchEngine on a persistent 3-worker pool, per-tree
/// TreeCache and per-worker EvalScratch. One case = one 1×1 batch.
class BatchOracle : public Oracle {
 public:
  BatchOracle()
      : Oracle({.name = "batch", .total_on = Dialect::kRegularXPathW}),
        pool_(3) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    BatchOptions options;
    options.pool = &pool_;
    BatchEngine engine(options);
    // Non-owning alias: the engine (and every scratch/cache bound to the
    // tree) dies before Run returns.
    engine.AddTree(std::shared_ptr<const Tree>(&tree, [](const Tree*) {}));
    std::vector<Query> queries;
    queries.push_back(Query::FromExpr(query));
    std::vector<std::vector<Bitset>> result = engine.Run(queries);
    return std::move(result[0][0]);
  }

 private:
  ThreadPool pool_;
};

/// The compiled execution backend: each case is lowered to a DAG bytecode
/// program (hash-consing, register allocation) and run on the general
/// register machine — deliberately bypassing the downward fast path so the
/// bytecode interpreter itself is what gets cross-checked.
class ExecOracle : public Oracle {
 public:
  ExecOracle()
      : Oracle({.name = "exec", .total_on = Dialect::kRegularXPathW}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    std::shared_ptr<const exec::Program> program =
        exec::Program::Compile(query);
    exec::ExecEngine engine(tree);
    return engine.EvalGeneral(*program);
  }
};

/// The superoptimized compiled backend: the same lowering as `exec`, but
/// run through the beam-search bytecode superoptimizer first (see
/// exec/superopt.h) and evaluated on the general register machine. Fuzzing
/// this against `exec` (and the rest of the registry) is the dynamic leg
/// of the superoptimizer's equivalence argument: the structural witness
/// check guards each rewrite, this oracle guards the composition.
class SuperoptExecOracle : public Oracle {
 public:
  SuperoptExecOracle()
      : Oracle({.name = "sexec", .total_on = Dialect::kRegularXPathW}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    std::shared_ptr<const exec::Program> program =
        exec::Superoptimize(exec::Program::Compile(query));
    exec::ExecEngine engine(tree);
    return engine.EvalGeneral(*program);
  }
};

/// The one-pass downward engine: a single bottom-up sweep over the
/// preorder arrays evaluating the compiled bit program.
class DownwardExecOracle : public Oracle {
 public:
  DownwardExecOracle()
      : Oracle({.name = "dexec",
                .total_on = Dialect::kRegularXPathW,
                .downward_only = true}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    std::shared_ptr<const exec::Program> program =
        exec::Program::Compile(query);
    if (program->downward() == nullptr) {
      // The downward gate is IsDownwardNode; a downward query that fails
      // bit-program compilation is residual softness, not a wrong answer.
      return Status::NotSupported("no downward compilation");
    }
    exec::ExecEngine engine(tree);
    return engine.EvalDownward(*program);
  }
};

/// Translation to FO(MTC) + the naive logic-side model checker.
class FOOracle : public Oracle {
 public:
  explicit FOOracle(const DefaultRegistryOptions& options)
      : Oracle({.name = "fo",
                .total_on = Dialect::kRegularXPathW,
                .max_tree_nodes = options.fo_max_tree_nodes,
                .max_query_size = options.fo_max_query_size}) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    FormulaPtr formula = NodeToFO(*query, 0);
    return EvalFormulaUnary(tree, *formula, 0);
  }
};

/// The nested tree-walking automata compiler, evaluated by n marked runs.
class NtwaOracle : public Oracle {
 public:
  NtwaOracle(Alphabet* alphabet, const DefaultRegistryOptions& options)
      : Oracle({.name = "ntwa",
                .total_on = Dialect::kRegularXPathW,
                .compilable_only = true,
                .max_tree_nodes = options.ntwa_max_tree_nodes,
                .max_query_size = options.ntwa_max_query_size}),
        alphabet_(alphabet) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    XPathToNtwaCompiler compiler(alphabet_, CaseUniverse(tree, *query));
    XPTC_ASSIGN_OR_RETURN(CompiledQuery compiled, compiler.Compile(*query));
    return compiled.EvalAll(tree);
  }

 private:
  Alphabet* alphabet_;
};

/// Downward fragment through the bottom-up determinisation: a downward φ
/// satisfies φ ≡ W φ, so v ∈ [[φ]]_T iff the DFTA accepts T|v.
class DftaOracle : public Oracle {
 public:
  DftaOracle(Alphabet* alphabet, const DefaultRegistryOptions& options)
      : Oracle({.name = "dfta",
                .total_on = Dialect::kRegularXPathW,
                .downward_only = true,
                .compilable_only = true,
                .max_tree_nodes = options.dfta_max_tree_nodes,
                .max_query_size = options.dfta_max_query_size}),
        alphabet_(alphabet) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    XPTC_ASSIGN_OR_RETURN(
        Dfta dfta,
        DownwardQueryToDfta(*query, alphabet_, CaseUniverse(tree, *query)));
    SelectedSet out(tree.size());
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (dfta.Accepts(tree.ExtractSubtree(v))) out.Set(v);
    }
    return out;
  }

 private:
  Alphabet* alphabet_;
};

// ---------------------------------------------------------------------------
// Mutants: the naive reference evaluated on a query with one construct
// rewritten the way a single-line evaluator bug would mis-handle it.

PathPtr MutatePath(const PathPtr& path, Mutation mutation);

NodePtr MutateNode(const NodePtr& node, Mutation mutation) {
  switch (node->op) {
    case NodeOp::kLabel:
    case NodeOp::kTrue:
      return node;
    case NodeOp::kNot:
      return MakeNot(MutateNode(node->left, mutation));
    case NodeOp::kAnd: {
      NodePtr left = MutateNode(node->left, mutation);
      NodePtr right = MutateNode(node->right, mutation);
      if (mutation == Mutation::kAndAsOr) {
        return MakeOr(std::move(left), std::move(right));
      }
      return MakeAnd(std::move(left), std::move(right));
    }
    case NodeOp::kOr:
      return MakeOr(MutateNode(node->left, mutation),
                    MutateNode(node->right, mutation));
    case NodeOp::kSome:
      return MakeSome(MutatePath(node->path, mutation));
    case NodeOp::kWithin: {
      NodePtr body = MutateNode(node->left, mutation);
      if (mutation == Mutation::kDropWithin) return body;
      return MakeWithin(std::move(body));
    }
  }
  return node;
}

PathPtr MutatePath(const PathPtr& path, Mutation mutation) {
  switch (path->op) {
    case PathOp::kAxis:
      return path;
    case PathOp::kSeq:
      return MakeSeq(MutatePath(path->left, mutation),
                     MutatePath(path->right, mutation));
    case PathOp::kUnion:
      return MakeUnion(MutatePath(path->left, mutation),
                       MutatePath(path->right, mutation));
    case PathOp::kFilter:
      return MakeFilter(MutatePath(path->left, mutation),
                        MutateNode(path->pred, mutation));
    case PathOp::kStar: {
      PathPtr body = MutatePath(path->left, mutation);
      if (mutation == Mutation::kStarAsPlus) {
        return MakePlus(std::move(body));
      }
      return MakeStar(std::move(body));
    }
  }
  return path;
}

class MutantOracle : public Oracle {
 public:
  explicit MutantOracle(Mutation mutation)
      : Oracle({.name = std::string("mutant-") + MutationToString(mutation),
                .total_on = Dialect::kRegularXPathW,
                .max_tree_nodes = 96}),
        mutation_(mutation) {}

  Result<SelectedSet> Run(const Tree& tree, const NodePtr& query) override {
    return EvalNodeNaive(tree, *MutateNode(query, mutation_));
  }

 private:
  Mutation mutation_;
};

}  // namespace

const char* MutationToString(Mutation mutation) {
  switch (mutation) {
    case Mutation::kAndAsOr:
      return "and-as-or";
    case Mutation::kStarAsPlus:
      return "star-as-plus";
    case Mutation::kDropWithin:
      return "drop-within";
  }
  return "?";
}

std::unique_ptr<Oracle> MakeMutantOracle(Mutation mutation) {
  return std::make_unique<MutantOracle>(mutation);
}

std::unique_ptr<OracleRegistry> MakeDefaultRegistry(
    Alphabet* alphabet, const DefaultRegistryOptions& options) {
  auto registry = std::make_unique<OracleRegistry>();
  registry->Register(std::make_unique<NaiveOracle>());
  registry->Register(std::make_unique<SetsOracle>());
  registry->Register(std::make_unique<SeedOracle>());
  if (options.include_batch) {
    registry->Register(std::make_unique<BatchOracle>());
  }
  registry->Register(std::make_unique<ExecOracle>());
  registry->Register(std::make_unique<SuperoptExecOracle>());
  registry->Register(std::make_unique<DownwardExecOracle>());
  if (options.include_heavy) {
    registry->Register(std::make_unique<FOOracle>(options));
    registry->Register(std::make_unique<NtwaOracle>(alphabet, options));
    registry->Register(std::make_unique<DftaOracle>(alphabet, options));
  }
  return registry;
}

}  // namespace testing
}  // namespace xptc
