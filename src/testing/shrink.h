#ifndef XPTC_TESTING_SHRINK_H_
#define XPTC_TESTING_SHRINK_H_

#include <functional>
#include <vector>

#include "common/alphabet.h"
#include "tree/tree.h"
#include "xpath/ast.h"

namespace xptc {
namespace testing {

/// "Does the failure still reproduce on this candidate?" — typically a
/// re-run of the oracle pair that originally disagreed
/// (OracleRegistry::PairDisagrees). The predicate must be deterministic;
/// candidates on which it is false (including candidates that left the
/// fragment an oracle is gated to) are simply not taken.
using FailurePredicate = std::function<bool(const Tree&, const NodePtr&)>;

struct ShrinkStats {
  int tree_nodes_before = 0;
  int tree_nodes_after = 0;
  int query_size_before = 0;
  int query_size_after = 0;
  int steps = 0;  // committed shrink steps
};

struct ShrunkCase {
  Tree tree;
  NodePtr query;
  ShrinkStats stats;
};

/// A copy of `tree` with the subtree of `v` removed (`v` must not be the
/// root).
Tree DeleteSubtree(const Tree& tree, NodeId v);

/// One-step shrink candidates of a node expression, most aggressive first:
/// every subexpression position replaced by one of its children, by ⊤, or
/// (for paths) by a one-step-shrunk path. Every candidate is no larger
/// than the input; most are strictly smaller.
std::vector<NodePtr> NodeShrinkCandidates(const NodePtr& node);

/// Same for path expressions (used under ⟨·⟩ and filters).
std::vector<PathPtr> PathShrinkCandidates(const PathPtr& path);

/// Greedy delta-debugging of a failing (tree, query) case:
///  - tree passes: hoist to a child subtree, delete subtrees (deepest
///    effect first via repeated sweeps), collapse labels to
///    `collapse_label`;
///  - query passes: greedy first-improvement over NodeShrinkCandidates;
/// iterated to a fixpoint (or `max_steps` commits). The result still
/// satisfies `still_fails`. Typical counterexamples land under ~5 nodes
/// on both sides.
ShrunkCase ShrinkCounterexample(const Tree& tree, const NodePtr& query,
                                const FailurePredicate& still_fails,
                                Symbol collapse_label, int max_steps = 10000);

}  // namespace testing
}  // namespace xptc

#endif  // XPTC_TESTING_SHRINK_H_
