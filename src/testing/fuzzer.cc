#include "testing/fuzzer.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "compile/compile.h"
#include "obs/metrics.h"
#include "tree/generate.h"
#include "xpath/generator.h"
#include "xpath/parser.h"

namespace xptc {
namespace testing {

namespace {

constexpr FuzzFragment kConcreteFragments[] = {
    FuzzFragment::kCore,     FuzzFragment::kRegular,
    FuzzFragment::kRegularW, FuzzFragment::kDownward,
    FuzzFragment::kCompilable,
};

QueryFragment ToQueryFragment(FuzzFragment fragment) {
  switch (fragment) {
    case FuzzFragment::kCore:
      return QueryFragment::kCore;
    case FuzzFragment::kRegular:
      return QueryFragment::kRegular;
    case FuzzFragment::kRegularW:
      return QueryFragment::kRegularW;
    case FuzzFragment::kDownward:
      return QueryFragment::kDownward;
    default:
      XPTC_CHECK(false) << "no QueryFragment for "
                        << FuzzFragmentToString(fragment);
      return QueryFragment::kCore;
  }
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* FuzzFragmentToString(FuzzFragment fragment) {
  switch (fragment) {
    case FuzzFragment::kCore:
      return "core";
    case FuzzFragment::kRegular:
      return "regular";
    case FuzzFragment::kRegularW:
      return "regularw";
    case FuzzFragment::kDownward:
      return "downward";
    case FuzzFragment::kCompilable:
      return "compilable";
    case FuzzFragment::kAll:
      return "all";
  }
  return "?";
}

std::optional<FuzzFragment> FuzzFragmentFromString(std::string_view name) {
  for (FuzzFragment f :
       {FuzzFragment::kCore, FuzzFragment::kRegular, FuzzFragment::kRegularW,
        FuzzFragment::kDownward, FuzzFragment::kCompilable,
        FuzzFragment::kAll}) {
    if (name == FuzzFragmentToString(f)) return f;
  }
  return std::nullopt;
}

Fuzzer::Fuzzer(OracleRegistry* registry, Alphabet* alphabet,
               FuzzOptions options)
    : registry_(registry), alphabet_(alphabet), options_(std::move(options)) {
  XPTC_CHECK(options_.max_cases > 0 || options_.max_seconds > 0)
      << "Fuzzer: at least one of max_cases / max_seconds must be set";
  XPTC_CHECK_GT(options_.num_labels, 0);
  XPTC_CHECK_GT(options_.max_tree_nodes, 0);
  if (!options_.candidate.empty()) {
    candidate_ = registry_->Find(options_.candidate);
    XPTC_CHECK(candidate_ != nullptr)
        << "unknown candidate oracle: " << options_.candidate;
  }
  labels_ = DefaultLabels(alphabet_, options_.num_labels);
}

uint64_t Fuzzer::CaseSeedAt(uint64_t campaign_seed, int64_t index) {
  // Random-access derivation (no stream to replay): an Rng seeded from the
  // pair, advanced once. SplitMix seeding inside Rng decorrelates adjacent
  // indices.
  return Rng(campaign_seed +
             0x9e3779b97f4a7c15ull * static_cast<uint64_t>(index + 1))
      .Next();
}

FuzzCase Fuzzer::DeriveCase(uint64_t case_seed) const {
  Rng rng(case_seed);
  FuzzCase out;
  out.case_seed = case_seed;
  out.fragment = options_.fragment;
  if (out.fragment == FuzzFragment::kAll) {
    out.fragment = kConcreteFragments[rng.NextBelow(
        sizeof(kConcreteFragments) / sizeof(kConcreteFragments[0]))];
  }

  TreeGenOptions tree_options;
  if (options_.deep_tree_bias && rng.NextBool()) {
    tree_options.num_nodes =
        rng.NextInt(options_.max_tree_nodes, options_.max_tree_nodes * 8);
    tree_options.shape =
        rng.NextBool() ? TreeShape::kChain : TreeShape::kCaterpillar;
  } else {
    tree_options.num_nodes = rng.NextInt(1, options_.max_tree_nodes);
    tree_options.shape = static_cast<TreeShape>(rng.NextBelow(7));
  }
  tree_options.arity = rng.NextInt(2, 4);
  Rng tree_rng = rng.Fork();
  out.tree = GenerateTree(tree_options, labels_, &tree_rng);

  const int depth = rng.NextInt(1, options_.max_query_depth);
  Rng query_rng = rng.Fork();
  if (out.fragment == FuzzFragment::kCompilable) {
    QueryGenOptions query_options;
    query_options.max_depth = depth;
    out.query = GenerateCompilableNode(query_options, labels_, &query_rng);
  } else {
    out.query = GenerateNode(
        OptionsForFragment(ToQueryFragment(out.fragment), depth), labels_,
        &query_rng);
  }
  return out;
}

std::optional<Finding> Fuzzer::CheckOne(const FuzzCase& fuzz_case) {
  std::optional<Disagreement> disagreement =
      candidate_ != nullptr
          ? registry_->CheckCandidate(fuzz_case.tree, fuzz_case.query,
                                      candidate_)
          : registry_->Check(fuzz_case.tree, fuzz_case.query);
  if (!disagreement.has_value()) return std::nullopt;

  Finding finding;
  finding.case_seed = fuzz_case.case_seed;
  finding.reference = disagreement->reference;
  finding.other = disagreement->other;
  finding.description = disagreement->Describe();
  finding.original = CorpusCase{fuzz_case.case_seed,
                                CompactXml(fuzz_case.tree, *alphabet_),
                                NodeToString(*fuzz_case.query, *alphabet_)};

  Oracle* reference = registry_->Find(disagreement->reference);
  Oracle* other = registry_->Find(disagreement->other);
  XPTC_CHECK(reference != nullptr && other != nullptr);
  const FailurePredicate still_fails = [this, reference, other](
                                           const Tree& t, const NodePtr& q) {
    return registry_->PairDisagrees(reference, other, t, q);
  };
  const ShrunkCase shrunk = ShrinkCounterexample(
      fuzz_case.tree, fuzz_case.query, still_fails, labels_[0]);
  finding.shrink = shrunk.stats;
  finding.shrunk = CorpusCase{fuzz_case.case_seed,
                              CompactXml(shrunk.tree, *alphabet_),
                              NodeToString(*shrunk.query, *alphabet_)};

  if (!options_.corpus_dir.empty()) {
    const std::string path = options_.corpus_dir + "/finding-" +
                             std::to_string(fuzz_case.case_seed) + ".case";
    const std::string comment =
        "disagreement: " + finding.reference + " vs " + finding.other + "\n" +
        finding.description + "\nfragment: " +
        FuzzFragmentToString(fuzz_case.fragment) +
        ", shrunk from " + std::to_string(finding.shrink.tree_nodes_before) +
        "/" + std::to_string(finding.shrink.query_size_before) +
        " to " + std::to_string(finding.shrink.tree_nodes_after) + "/" +
        std::to_string(finding.shrink.query_size_after) +
        " (tree nodes/query size) in " +
        std::to_string(finding.shrink.steps) + " steps\noriginal: " +
        FormatCaseLine(finding.original);
    // Best effort: an unwritable corpus dir must not kill the campaign.
    const Status write_status = WriteCaseFile(path, finding.shrunk, comment);
    (void)write_status;
  }
  return finding;
}

CampaignResult Fuzzer::Run() {
  // Campaign-loop counters live in the process-wide registry, so a long
  // campaign is scrapeable mid-flight (Prometheus export) instead of only
  // reporting totals at exit.
  obs::Registry& reg = obs::Registry::Default();
  obs::Counter& cases_counter = reg.counter("fuzz.cases");
  obs::Counter& findings_counter = reg.counter("fuzz.findings");
  CampaignResult result;
  const double start = Now();
  for (int64_t i = 0;; ++i) {
    if (options_.max_cases > 0 && i >= options_.max_cases) break;
    if (options_.max_seconds > 0 && Now() - start >= options_.max_seconds) {
      break;
    }
    const FuzzCase fuzz_case = DeriveCase(CaseSeedAt(options_.seed, i));
    ++result.cases;
    cases_counter.Inc();
    std::optional<Finding> finding = CheckOne(fuzz_case);
    if (finding.has_value()) {
      findings_counter.Inc();
      result.findings.push_back(std::move(*finding));
      if (static_cast<int>(result.findings.size()) >= options_.max_findings) {
        break;
      }
    }
  }
  result.seconds = Now() - start;
  return result;
}

Result<std::optional<Disagreement>> ReplayCase(OracleRegistry* registry,
                                               Alphabet* alphabet,
                                               const CorpusCase& c) {
  XPTC_ASSIGN_OR_RETURN(Tree tree, CaseTree(c, alphabet));
  XPTC_ASSIGN_OR_RETURN(NodePtr query, ParseNode(c.query, alphabet));
  return registry->Check(tree, query);
}

std::vector<SelfCheckReport> RunSelfCheck(Alphabet* alphabet, uint64_t seed,
                                          int64_t max_cases) {
  std::vector<SelfCheckReport> reports;
  for (Mutation mutation :
       {Mutation::kAndAsOr, Mutation::kStarAsPlus, Mutation::kDropWithin}) {
    // Cheap real oracles + the mutant; the naive reference is first, so
    // every disagreement pits the mutant against it.
    DefaultRegistryOptions registry_options;
    registry_options.include_heavy = false;
    registry_options.include_batch = false;
    std::unique_ptr<OracleRegistry> registry =
        MakeDefaultRegistry(alphabet, registry_options);
    registry->Register(MakeMutantOracle(mutation));

    FuzzOptions options;
    options.seed = seed + static_cast<uint64_t>(mutation);
    options.max_cases = max_cases;
    options.max_findings = 1;
    options.max_tree_nodes = 16;
    switch (mutation) {
      case Mutation::kAndAsOr:
        options.fragment = FuzzFragment::kCore;  // ∧ is frequent everywhere
        break;
      case Mutation::kStarAsPlus:
        options.fragment = FuzzFragment::kRegular;  // star forced to appear
        break;
      case Mutation::kDropWithin:
        options.fragment = FuzzFragment::kRegularW;  // W forced to appear
        break;
    }

    Fuzzer fuzzer(registry.get(), alphabet, options);
    CampaignResult campaign = fuzzer.Run();

    SelfCheckReport report;
    report.mutation = mutation;
    report.cases = campaign.cases;
    if (!campaign.findings.empty()) {
      report.found = true;
      report.finding = std::move(campaign.findings.front());
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace testing
}  // namespace xptc
