#ifndef XPTC_TESTING_STRESS_H_
#define XPTC_TESTING_STRESS_H_

#include <cstdint>
#include <string>

namespace xptc {
namespace testing {

/// Configuration of the multi-threaded differential stress run. Defaults
/// are sized for a CI TSan job (a few seconds under instrumentation).
struct StressOptions {
  uint64_t seed = 1;

  /// Client threads hammering the throughput layer concurrently with each
  /// other and with whole BatchEngine::Run sweeps issued from the driver.
  int num_threads = 4;

  /// Shared workload: `num_trees` documents × `num_queries` query texts.
  int num_trees = 5;
  int num_queries = 16;
  int max_tree_nodes = 40;

  /// Random (tree, query) evaluations per client thread.
  int iterations_per_thread = 120;

  /// Whole-matrix BatchEngine::Run sweeps issued while clients run.
  int batch_sweeps = 3;

  /// Deliberately tiny plan cache so hit/evict/re-parse races are constant.
  int plan_cache_capacity = 4;
};

struct StressReport {
  int64_t evaluations = 0;  // individual result comparisons performed
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_evictions = 0;
  int mismatches = 0;
  std::string first_mismatch;  // description of the first divergence

  // obs::Histogram merge-under-concurrency check: every evaluation
  // Observes its result count into a per-thread histogram, threads Merge
  // into one shared histogram while others still observe, and the run
  // verifies the merged totals (count == evaluations, bucket sum ==
  // count). Exercised under TSan by the fuzz_stress_tsan ctest entry.
  int64_t histogram_count = 0;
  bool histogram_ok = false;

  bool ok() const { return mismatches == 0 && histogram_ok; }
};

/// Differential concurrency stress of the throughput layer: one shared
/// workload is evaluated (a) sequentially up front (the expected answers)
/// and (b) concurrently from `num_threads` client threads — each drawing
/// random (tree, query) pairs through a deliberately small shared
/// `PlanCache` and per-thread `EvalScratch`es attached to the engine's
/// shared `TreeCache`s — while whole `BatchEngine::Run` sweeps execute on
/// the same caches. Every concurrent answer is compared bit-for-bit to the
/// sequential one.
///
/// All query texts are parsed once, sequentially, before any thread
/// starts: `Alphabet::Intern` is not thread-safe, but once every label is
/// interned the concurrent re-parses only perform lookups.
///
/// The races this targets (under TSan): PlanCache LRU eviction,
/// TreeCache shard insertion (`W` memo + label sets), BatchEngine scratch
/// row growth, and ThreadPool work stealing.
StressReport RunConcurrencyStress(const StressOptions& options = {});

}  // namespace testing
}  // namespace xptc

#endif  // XPTC_TESTING_STRESS_H_
