#ifndef XPTC_TREE_GENERATE_H_
#define XPTC_TREE_GENERATE_H_

#include <vector>

#include "common/alphabet.h"
#include "common/rng.h"
#include "tree/tree.h"

namespace xptc {

/// Structural families of generated trees. Benchmarks sweep over these to
/// expose shape-dependent behaviour (deep recursion vs. wide fan-out vs.
/// balanced).
enum class TreeShape {
  kUniformRecursive,  // node i attaches to a uniformly random earlier node
  kChain,             // a single path (maximal depth)
  kStar,              // root with n-1 children (maximal fan-out)
  kFullBinary,        // complete binary tree (heap numbering)
  kFullKAry,          // complete k-ary tree (heap numbering), k = `arity`
  kComb,              // spine with one leaf hanging off each spine node
  kCaterpillar,       // spine with a random number of leaves per spine node
};

const char* TreeShapeToString(TreeShape shape);

/// Parameters for `GenerateTree`.
struct TreeGenOptions {
  int num_nodes = 16;
  TreeShape shape = TreeShape::kUniformRecursive;
  int arity = 3;  // only for kFullKAry
};

/// Interns `count` default label names ("a", "b", ..., "z", "l26", ...) and
/// returns their symbols. The standard label universe for generated corpora.
std::vector<Symbol> DefaultLabels(Alphabet* alphabet, int count);

/// Generates a tree of the requested shape with exactly
/// `options.num_nodes` nodes, labelled uniformly at random from `labels`.
/// Fully deterministic given the Rng seed.
Tree GenerateTree(const TreeGenOptions& options,
                  const std::vector<Symbol>& labels, Rng* rng);

}  // namespace xptc

#endif  // XPTC_TREE_GENERATE_H_
