#include "tree/enumerate.h"

namespace xptc {

namespace {

// Enumeration works over an explicit event script (preorder Begin/End
// sequence) so the recursion can backtrack; each completed script is
// replayed into a TreeBuilder.
struct Event {
  bool begin;
  Symbol label;  // meaningful only when begin
};

class Enumerator {
 public:
  Enumerator(const std::vector<Symbol>& labels,
             const std::function<void(const Tree&)>& fn)
      : labels_(labels), fn_(fn) {}

  int64_t Run(int num_nodes) {
    count_ = 0;
    EnumTree(num_nodes, [this]() { Emit(); });
    return count_;
  }

 private:
  // Enumerates every tree with exactly `n` nodes appended to the current
  // script; calls `done` for each completion (then backtracks).
  void EnumTree(int n, const std::function<void()>& done) {
    for (Symbol label : labels_) {
      script_.push_back({true, label});
      EnumForest(n - 1, [this, &done]() {
        script_.push_back({false, 0});
        done();
        script_.pop_back();
      });
      script_.pop_back();
    }
  }

  // Enumerates every ordered forest with exactly `m` nodes in total.
  void EnumForest(int m, const std::function<void()>& done) {
    if (m == 0) {
      done();
      return;
    }
    for (int first = 1; first <= m; ++first) {
      EnumTree(first, [this, m, first, &done]() {
        EnumForest(m - first, done);
      });
    }
  }

  void Emit() {
    TreeBuilder builder;
    for (const Event& event : script_) {
      if (event.begin) {
        builder.Begin(event.label);
      } else {
        builder.End();
      }
    }
    fn_(std::move(builder).Finish().ValueOrDie());
    ++count_;
  }

  const std::vector<Symbol>& labels_;
  const std::function<void(const Tree&)>& fn_;
  std::vector<Event> script_;
  int64_t count_ = 0;
};

}  // namespace

int64_t EnumerateTreesOfSize(int num_nodes, const std::vector<Symbol>& labels,
                             const std::function<void(const Tree&)>& fn) {
  XPTC_CHECK_GT(num_nodes, 0);
  XPTC_CHECK(!labels.empty());
  Enumerator enumerator(labels, fn);
  return enumerator.Run(num_nodes);
}

int64_t EnumerateTrees(int max_nodes, const std::vector<Symbol>& labels,
                       const std::function<void(const Tree&)>& fn) {
  int64_t total = 0;
  for (int n = 1; n <= max_nodes; ++n) {
    total += EnumerateTreesOfSize(n, labels, fn);
  }
  return total;
}

int64_t CountTreeShapes(int num_nodes) {
  // Catalan(num_nodes - 1) via the product formula.
  XPTC_CHECK_GT(num_nodes, 0);
  const int n = num_nodes - 1;
  int64_t c = 1;
  for (int i = 0; i < n; ++i) {
    c = c * 2 * (2 * i + 1) / (i + 2);
  }
  return c;
}

}  // namespace xptc
