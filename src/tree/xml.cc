#include "tree/xml.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace xptc {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class XmlParser {
 public:
  XmlParser(const std::string& text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<Tree> Parse() {
    TreeBuilder builder;
    std::vector<std::string> stack;
    bool seen_root = false;
    for (;;) {
      SkipMisc();
      if (pos_ >= text_.size()) break;
      if (text_[pos_] != '<') {
        // Text content: only meaningful inside an element.
        if (stack.empty()) {
          return Error("text content outside the root element");
        }
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        continue;
      }
      ++pos_;  // consume '<'
      if (pos_ >= text_.size()) return Error("unexpected end after '<'");
      if (text_[pos_] == '/') {
        ++pos_;
        std::string name;
        XPTC_RETURN_NOT_OK(ParseName(&name));
        SkipSpace();
        if (!Consume('>')) return Error("expected '>' in closing tag");
        if (stack.empty()) return Error("closing tag with no open element");
        if (stack.back() != name) {
          return Error("mismatched closing tag </" + name + ">, expected </" +
                       stack.back() + ">");
        }
        stack.pop_back();
        builder.End();
        continue;
      }
      // Opening or self-closing tag.
      if (stack.empty() && seen_root) {
        return Error("multiple root elements");
      }
      std::string name;
      XPTC_RETURN_NOT_OK(ParseName(&name));
      XPTC_RETURN_NOT_OK(SkipAttributes());
      builder.Begin(alphabet_->Intern(name));
      seen_root = true;
      if (Consume('/')) {
        if (!Consume('>')) return Error("expected '>' after '/'");
        builder.End();
      } else if (Consume('>')) {
        stack.push_back(name);
      } else {
        return Error("expected '>' or '/>' in tag <" + name + ">");
      }
    }
    if (!stack.empty()) {
      return Error("unclosed element <" + stack.back() + ">");
    }
    if (!seen_root) return Error("document has no root element");
    return std::move(builder).Finish();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("XML parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, processing instructions, XML declarations.
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (pos_ + 3 < text_.size() && text_.compare(pos_, 4, "<!--") == 0) {
        const size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
          text_[pos_ + 1] == '?') {
        const size_t end = text_.find("?>", pos_ + 2);
        pos_ = end == std::string::npos ? text_.size() : end + 2;
        continue;
      }
      return;
    }
  }

  Status ParseName(std::string* name) {
    if (pos_ >= text_.size() || !IsNameStartChar(text_[pos_])) {
      return Error("expected element name");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    *name = text_.substr(start, pos_ - start);
    return Status::OK();
  }

  // Validates `name="value"` pairs and discards them.
  Status SkipAttributes() {
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unexpected end inside tag");
      if (text_[pos_] == '>' || text_[pos_] == '/') return Status::OK();
      std::string attr;
      XPTC_RETURN_NOT_OK(ParseName(&attr));
      SkipSpace();
      if (!Consume('=')) return Error("expected '=' after attribute " + attr);
      SkipSpace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Error("expected quoted value for attribute " + attr);
      }
      const char quote = text_[pos_++];
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (!Consume(quote)) return Error("unterminated attribute value");
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

void WriteNode(const Tree& tree, const Alphabet& alphabet, NodeId v,
               int indent, std::ostringstream* out) {
  for (int i = 0; i < indent; ++i) *out << "  ";
  const std::string& name = alphabet.Name(tree.Label(v));
  if (tree.IsLeaf(v)) {
    *out << '<' << name << "/>\n";
    return;
  }
  *out << '<' << name << ">\n";
  for (NodeId c = tree.FirstChild(v); c != kNoNode; c = tree.NextSibling(c)) {
    WriteNode(tree, alphabet, c, indent + 1, out);
  }
  for (int i = 0; i < indent; ++i) *out << "  ";
  *out << "</" << name << ">\n";
}

}  // namespace

Result<Tree> ParseXml(const std::string& text, Alphabet* alphabet) {
  XmlParser parser(text, alphabet);
  return parser.Parse();
}

std::string WriteXml(const Tree& tree, const Alphabet& alphabet) {
  std::ostringstream out;
  if (!tree.empty()) WriteNode(tree, alphabet, tree.root(), 0, &out);
  return out.str();
}

}  // namespace xptc
