#include "tree/tree.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace xptc {

int Tree::Height() const {
  int height = 0;
  for (int v = 0; v < size(); ++v) height = std::max(height, depth_[Index(v)]);
  return height;
}

NodeId Tree::LowestCommonAncestor(NodeId a, NodeId b) const {
  // Walk the deeper node up until the subtree-interval test succeeds;
  // O(depth) with O(1) containment checks.
  while (!InSubtree(b, a)) a = Parent(a);
  return a;
}

Tree Tree::ExtractSubtree(NodeId v) const {
  const NodeId end = SubtreeEnd(v);
  const int n = end - v;
  Tree out;
  out.label_.resize(static_cast<size_t>(n));
  out.parent_.resize(static_cast<size_t>(n));
  out.first_child_.resize(static_cast<size_t>(n));
  out.last_child_.resize(static_cast<size_t>(n));
  out.next_sibling_.resize(static_cast<size_t>(n));
  out.prev_sibling_.resize(static_cast<size_t>(n));
  out.depth_.resize(static_cast<size_t>(n));
  out.subtree_end_.resize(static_cast<size_t>(n));
  out.subtree_size_.resize(static_cast<size_t>(n));
  out.child_count_.resize(static_cast<size_t>(n));
  auto remap = [v](NodeId id) { return id == kNoNode ? kNoNode : id - v; };
  const int base_depth = Depth(v);
  for (NodeId w = v; w < end; ++w) {
    const size_t i = static_cast<size_t>(w - v);
    out.label_[i] = Label(w);
    out.first_child_[i] = remap(FirstChild(w));
    out.last_child_[i] = remap(LastChild(w));
    out.depth_[i] = Depth(w) - base_depth;
    out.subtree_end_[i] = SubtreeEnd(w) - v;
    out.subtree_size_[i] = SubtreeSize(w);
    out.child_count_[i] = ChildCount(w);
    if (w == v) {
      // `v` becomes a root: detach it from its context.
      out.parent_[i] = kNoNode;
      out.next_sibling_[i] = kNoNode;
      out.prev_sibling_[i] = kNoNode;
    } else {
      // Parents and siblings of strict descendants of `v` stay inside the
      // subtree, so plain remapping is safe.
      out.parent_[i] = remap(Parent(w));
      out.next_sibling_[i] = remap(NextSibling(w));
      out.prev_sibling_[i] = remap(PrevSibling(w));
    }
  }
  return out;
}

Tree Tree::RelabelNode(NodeId node, Symbol label) const {
  Tree out = *this;
  out.label_[out.Index(node)] = label;
  return out;
}

namespace {

// Recursive-descent parser for the `a(b, c(d))` term notation.
class TermParser {
 public:
  TermParser(const std::string& text, Alphabet* alphabet, TreeBuilder* builder)
      : text_(text), alphabet_(alphabet), builder_(builder) {}

  Status ParseRoot() {
    XPTC_RETURN_NOT_OK(ParseNode());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in term at position " +
                                     std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  // One recursion level per nesting level of the term; without a cap a
  // pathological `a(a(a(...` input overflows the stack instead of failing
  // with Status (found by the parser-facing fuzzer). 8192 comfortably
  // covers every legitimate corpus tree while staying far below stack
  // limits.
  static constexpr int kMaxNestingDepth = 8192;

  Status ParseNode() {
    if (++depth_ > kMaxNestingDepth) {
      --depth_;
      return Status::InvalidArgument("term nesting too deep at position " +
                                     std::to_string(pos_) + " (limit " +
                                     std::to_string(kMaxNestingDepth) + ")");
    }
    const Status status = ParseNodeInner();
    --depth_;
    return status;
  }

  Status ParseNodeInner() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(
                                       text_[pos_])) ||
                                   text_[pos_] == '_' || text_[pos_] == '#' ||
                                   text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected label at position " +
                                     std::to_string(start));
    }
    builder_->Begin(alphabet_->Intern(text_.substr(start, pos_ - start)));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      ++pos_;  // consume '('
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
      } else {
        for (;;) {
          XPTC_RETURN_NOT_OK(ParseNode());
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < text_.size() && text_[pos_] == ')') {
            ++pos_;
            break;
          }
          return Status::InvalidArgument("expected ',' or ')' at position " +
                                         std::to_string(pos_));
        }
      }
    }
    builder_->End();
    return Status::OK();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  Alphabet* alphabet_;
  TreeBuilder* builder_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void WriteTerm(const Tree& tree, const Alphabet& alphabet, NodeId v,
               std::ostringstream* out) {
  *out << alphabet.Name(tree.Label(v));
  if (!tree.IsLeaf(v)) {
    *out << '(';
    bool first = true;
    for (NodeId c = tree.FirstChild(v); c != kNoNode; c = tree.NextSibling(c)) {
      if (!first) *out << ',';
      first = false;
      WriteTerm(tree, alphabet, c, out);
    }
    *out << ')';
  }
}

}  // namespace

Result<Tree> Tree::FromTerm(const std::string& term, Alphabet* alphabet) {
  TreeBuilder builder;
  TermParser parser(term, alphabet, &builder);
  XPTC_RETURN_NOT_OK(parser.ParseRoot());
  return std::move(builder).Finish();
}

std::string Tree::ToTerm(const Alphabet& alphabet) const {
  if (empty()) return "";
  std::ostringstream out;
  WriteTerm(*this, alphabet, root(), &out);
  return out.str();
}

NodeId TreeBuilder::Begin(Symbol label) {
  const NodeId id = static_cast<NodeId>(tree_.label_.size());
  const NodeId parent = open_.empty() ? kNoNode : open_.back();
  tree_.label_.push_back(label);
  tree_.parent_.push_back(parent);
  tree_.first_child_.push_back(kNoNode);
  tree_.last_child_.push_back(kNoNode);
  tree_.next_sibling_.push_back(kNoNode);
  tree_.prev_sibling_.push_back(kNoNode);
  tree_.subtree_end_.push_back(kNoNode);
  tree_.subtree_size_.push_back(0);
  tree_.child_count_.push_back(0);
  if (parent == kNoNode) {
    tree_.depth_.push_back(0);
    ++root_count_;
  } else {
    ++tree_.child_count_[static_cast<size_t>(parent)];
    tree_.depth_.push_back(tree_.depth_[static_cast<size_t>(parent)] + 1);
    const NodeId prev = tree_.last_child_[static_cast<size_t>(parent)];
    if (prev == kNoNode) {
      tree_.first_child_[static_cast<size_t>(parent)] = id;
    } else {
      tree_.next_sibling_[static_cast<size_t>(prev)] = id;
      tree_.prev_sibling_[static_cast<size_t>(id)] = prev;
    }
    tree_.last_child_[static_cast<size_t>(parent)] = id;
  }
  open_.push_back(id);
  return id;
}

void TreeBuilder::End() {
  XPTC_CHECK(!open_.empty()) << "TreeBuilder::End with no open node";
  const NodeId id = open_.back();
  open_.pop_back();
  const NodeId end = static_cast<NodeId>(tree_.label_.size());
  tree_.subtree_end_[static_cast<size_t>(id)] = end;
  tree_.subtree_size_[static_cast<size_t>(id)] = end - id;
}

Result<Tree> TreeBuilder::Finish() && {
  if (!open_.empty()) {
    return Status::InvalidArgument("TreeBuilder::Finish with open nodes");
  }
  if (root_count_ != 1) {
    return Status::InvalidArgument("tree must have exactly one root, got " +
                                   std::to_string(root_count_));
  }
  return std::move(tree_);
}

}  // namespace xptc
