#include "tree/generate.h"

#include <string>

namespace xptc {

const char* TreeShapeToString(TreeShape shape) {
  switch (shape) {
    case TreeShape::kUniformRecursive:
      return "uniform";
    case TreeShape::kChain:
      return "chain";
    case TreeShape::kStar:
      return "star";
    case TreeShape::kFullBinary:
      return "binary";
    case TreeShape::kFullKAry:
      return "kary";
    case TreeShape::kComb:
      return "comb";
    case TreeShape::kCaterpillar:
      return "caterpillar";
  }
  return "?";
}

std::vector<Symbol> DefaultLabels(Alphabet* alphabet, int count) {
  XPTC_CHECK_GT(count, 0);
  std::vector<Symbol> labels;
  labels.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (i < 26) {
      labels.push_back(alphabet->Intern(std::string(1, 'a' + i)));
    } else {
      labels.push_back(alphabet->Intern("l" + std::to_string(i)));
    }
  }
  return labels;
}

namespace {

// Builds a tree from a parent vector (parents[i] < i, parents[0] == -1),
// preserving child order by attachment index.
Tree FromParentVector(const std::vector<int>& parents,
                      const std::vector<Symbol>& node_labels) {
  const int n = static_cast<int>(parents.size());
  std::vector<std::vector<int>> children(static_cast<size_t>(n));
  for (int i = 1; i < n; ++i) {
    children[static_cast<size_t>(parents[static_cast<size_t>(i)])].push_back(i);
  }
  TreeBuilder builder;
  // Iterative preorder DFS so deep chains do not overflow the stack.
  struct Frame {
    int node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  builder.Begin(node_labels[0]);
  stack.push_back({0, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& kids = children[static_cast<size_t>(frame.node)];
    if (frame.next_child < kids.size()) {
      const int child = kids[frame.next_child++];
      builder.Begin(node_labels[static_cast<size_t>(child)]);
      stack.push_back({child, 0});
    } else {
      builder.End();
      stack.pop_back();
    }
  }
  return std::move(builder).Finish().ValueOrDie();
}

std::vector<int> MakeParents(const TreeGenOptions& options, Rng* rng) {
  const int n = options.num_nodes;
  std::vector<int> parents(static_cast<size_t>(n), -1);
  switch (options.shape) {
    case TreeShape::kUniformRecursive:
      for (int i = 1; i < n; ++i) {
        parents[static_cast<size_t>(i)] = static_cast<int>(
            rng->NextBelow(static_cast<uint64_t>(i)));
      }
      break;
    case TreeShape::kChain:
      for (int i = 1; i < n; ++i) parents[static_cast<size_t>(i)] = i - 1;
      break;
    case TreeShape::kStar:
      for (int i = 1; i < n; ++i) parents[static_cast<size_t>(i)] = 0;
      break;
    case TreeShape::kFullBinary:
      for (int i = 1; i < n; ++i) parents[static_cast<size_t>(i)] = (i - 1) / 2;
      break;
    case TreeShape::kFullKAry: {
      const int k = options.arity < 1 ? 1 : options.arity;
      for (int i = 1; i < n; ++i) parents[static_cast<size_t>(i)] = (i - 1) / k;
      break;
    }
    case TreeShape::kComb: {
      // Even ids form the spine, odd ids are the teeth.
      int spine = 0;
      for (int i = 1; i < n; ++i) {
        if (i % 2 == 1) {
          parents[static_cast<size_t>(i)] = spine;  // tooth
        } else {
          parents[static_cast<size_t>(i)] = spine;
          spine = i;  // extend the spine
        }
      }
      break;
    }
    case TreeShape::kCaterpillar: {
      int spine = 0;
      for (int i = 1; i < n; ++i) {
        // Each new node either extends the spine or hangs off it.
        if (rng->NextBool(0.4)) {
          parents[static_cast<size_t>(i)] = spine;
          spine = i;
        } else {
          parents[static_cast<size_t>(i)] = spine;
        }
      }
      break;
    }
  }
  return parents;
}

}  // namespace

Tree GenerateTree(const TreeGenOptions& options,
                  const std::vector<Symbol>& labels, Rng* rng) {
  XPTC_CHECK_GT(options.num_nodes, 0);
  XPTC_CHECK(!labels.empty());
  const std::vector<int> parents = MakeParents(options, rng);
  std::vector<Symbol> node_labels(static_cast<size_t>(options.num_nodes));
  for (auto& label : node_labels) {
    label = labels[rng->NextBelow(labels.size())];
  }
  return FromParentVector(parents, node_labels);
}

}  // namespace xptc
