#ifndef XPTC_TREE_ENUMERATE_H_
#define XPTC_TREE_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/alphabet.h"
#include "tree/tree.h"

namespace xptc {

/// Invokes `fn` on every ordered labelled tree with between 1 and
/// `max_nodes` nodes over the given label set, exactly once each, in a
/// deterministic order. Returns the number of trees visited
/// (= Σ_{n=1..max} Catalan(n-1) · |labels|^n).
///
/// This is the exhaustive small-model bed used by the bounded-model
/// satisfiability/equivalence checker and by property tests: any claimed
/// validity is checked against *all* trees up to the bound.
int64_t EnumerateTrees(int max_nodes, const std::vector<Symbol>& labels,
                       const std::function<void(const Tree&)>& fn);

/// Same, but visits only trees with exactly `num_nodes` nodes.
int64_t EnumerateTreesOfSize(int num_nodes, const std::vector<Symbol>& labels,
                             const std::function<void(const Tree&)>& fn);

/// Number of ordered tree shapes with n nodes (Catalan(n-1)); helper for
/// sizing exhaustive sweeps.
int64_t CountTreeShapes(int num_nodes);

}  // namespace xptc

#endif  // XPTC_TREE_ENUMERATE_H_
