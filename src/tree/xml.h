#ifndef XPTC_TREE_XML_H_
#define XPTC_TREE_XML_H_

#include <string>

#include "common/alphabet.h"
#include "common/result.h"
#include "tree/tree.h"

namespace xptc {

/// Parses a minimal XML document into a `Tree`, interning element names into
/// `*alphabet`. Supported: nested elements, self-closing tags, attributes
/// (validated and then discarded — the paper's data model is label-only),
/// comments, processing instructions / XML declarations, and text content
/// (discarded). Unsupported: entities other than the five predefined ones,
/// CDATA, DTDs.
Result<Tree> ParseXml(const std::string& text, Alphabet* alphabet);

/// Serializes a tree as indented XML (structure and element names only).
std::string WriteXml(const Tree& tree, const Alphabet& alphabet);

}  // namespace xptc

#endif  // XPTC_TREE_XML_H_
