#ifndef XPTC_TREE_TREE_H_
#define XPTC_TREE_TREE_H_

#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/check.h"
#include "common/result.h"
#include "common/status.h"

namespace xptc {

/// Node identifier within a `Tree`: the node's preorder (document-order)
/// index, 0 for the root. Preorder ids make descendant tests O(1): the
/// subtree of `v` occupies the contiguous id range [v, SubtreeEnd(v)).
using NodeId = int;

inline constexpr NodeId kNoNode = -1;

/// A finite sibling-ordered node-labelled tree — the paper's abstraction of
/// an XML document. Immutable after construction (build via `TreeBuilder`,
/// `Tree::FromTerm` or `ParseXml`).
///
/// Structure is stored as flat arrays indexed by preorder id, giving O(1)
/// navigation along all primitive steps (parent, first/last child,
/// next/previous sibling) and O(1) descendant tests.
class Tree {
 public:
  /// Number of nodes (>= 1 for any constructed tree; a default-constructed
  /// Tree is empty and only useful as a placeholder).
  int size() const { return static_cast<int>(label_.size()); }
  bool empty() const { return label_.empty(); }

  NodeId root() const { return 0; }

  Symbol Label(NodeId v) const { return label_[Index(v)]; }
  NodeId Parent(NodeId v) const { return parent_[Index(v)]; }
  NodeId FirstChild(NodeId v) const { return first_child_[Index(v)]; }
  NodeId LastChild(NodeId v) const { return last_child_[Index(v)]; }
  NodeId NextSibling(NodeId v) const { return next_sibling_[Index(v)]; }
  NodeId PrevSibling(NodeId v) const { return prev_sibling_[Index(v)]; }
  int Depth(NodeId v) const { return depth_[Index(v)]; }

  // Read-only preorder column spans (`size()` entries each), for streaming
  // kernels that scan a whole id window sequentially — the density-adaptive
  // axis kernels and the downward sweep read these instead of per-node
  // accessor hops. The spans stay valid and immutable for the tree's
  // lifetime; entries are exactly what the per-node accessors return
  // (`kNoNode` sentinels included), so bounds discipline is the caller's.
  const Symbol* LabelData() const { return label_.data(); }
  const NodeId* ParentData() const { return parent_.data(); }
  const NodeId* FirstChildData() const { return first_child_.data(); }
  const NodeId* NextSiblingData() const { return next_sibling_.data(); }
  const NodeId* PrevSiblingData() const { return prev_sibling_.data(); }
  const NodeId* SubtreeEndData() const { return subtree_end_.data(); }
  const int* SubtreeSizeData() const { return subtree_size_.data(); }

  /// One past the last preorder id in the subtree of `v`.
  NodeId SubtreeEnd(NodeId v) const { return subtree_end_[Index(v)]; }
  /// Number of nodes in the subtree rooted at `v` (including `v`).
  /// Materialized as its own preorder column (not derived per call) so the
  /// interval axis kernels can stream it alongside `parent_`/`next_sibling_`.
  int SubtreeSize(NodeId v) const { return subtree_size_[Index(v)]; }

  bool IsRoot(NodeId v) const { return Parent(v) == kNoNode; }
  bool IsLeaf(NodeId v) const { return FirstChild(v) == kNoNode; }
  bool IsFirstSibling(NodeId v) const { return PrevSibling(v) == kNoNode; }
  bool IsLastSibling(NodeId v) const { return NextSibling(v) == kNoNode; }

  /// True iff `descendant` is a strict descendant of `ancestor`.
  bool IsStrictDescendant(NodeId descendant, NodeId ancestor) const {
    return descendant > ancestor && descendant < SubtreeEnd(ancestor);
  }
  /// True iff `v` lies in the subtree of `ancestor` (v == ancestor counts).
  bool InSubtree(NodeId v, NodeId ancestor) const {
    return v >= ancestor && v < SubtreeEnd(ancestor);
  }

  /// Number of children, O(1) (precomputed at build time — this is called
  /// from hot evaluator loops).
  int ChildCount(NodeId v) const { return child_count_[Index(v)]; }

  /// Invokes `fn(NodeId child)` for each child of `v` in sibling order.
  /// The allocation-free alternative to `ChildrenOf` for hot paths.
  template <typename Fn>
  void ForEachChild(NodeId v, Fn&& fn) const {
    for (NodeId c = FirstChild(v); c != kNoNode; c = NextSibling(c)) fn(c);
  }

  std::vector<NodeId> ChildrenOf(NodeId v) const {
    std::vector<NodeId> out;
    out.reserve(static_cast<size_t>(ChildCount(v)));
    for (NodeId c = FirstChild(v); c != kNoNode; c = NextSibling(c)) {
      out.push_back(c);
    }
    return out;
  }

  /// Maximum depth over all nodes (root has depth 0).
  int Height() const;

  /// Lowest common ancestor of two nodes (possibly one of them).
  NodeId LowestCommonAncestor(NodeId a, NodeId b) const;

  /// Document-order comparison: -1 if a precedes b, 0 if equal, +1 after.
  /// Preorder ids *are* document order, so this is an id comparison —
  /// provided for API clarity.
  int CompareDocumentOrder(NodeId a, NodeId b) const {
    return a < b ? -1 : (a == b ? 0 : 1);
  }

  /// Returns a standalone copy of the subtree rooted at `v` (node `v`
  /// becomes the root, ids are shifted to start at 0). This is the model
  /// `T|v` used by the `W` operator and by subtree runs of nested automata.
  Tree ExtractSubtree(NodeId v) const;

  /// Returns a copy of this tree with the label of `node` replaced.
  /// Used to mark a node for unary-query automata.
  Tree RelabelNode(NodeId node, Symbol label) const;

  /// Parses the compact term notation `a(b, c(d))` (labels are identifiers;
  /// whitespace ignored). Interns labels into `*alphabet`.
  static Result<Tree> FromTerm(const std::string& term, Alphabet* alphabet);

  /// Serializes to the compact term notation parsed by `FromTerm`.
  std::string ToTerm(const Alphabet& alphabet) const;

  bool operator==(const Tree& other) const {
    // Structure is determined by labels + parents + sibling order; all the
    // other arrays are derived, so comparing two suffices with next_sibling.
    return label_ == other.label_ && parent_ == other.parent_ &&
           next_sibling_ == other.next_sibling_;
  }
  bool operator!=(const Tree& other) const { return !(*this == other); }

 private:
  friend class TreeBuilder;

  size_t Index(NodeId v) const {
    XPTC_DCHECK(v >= 0 && static_cast<size_t>(v) < label_.size());
    return static_cast<size_t>(v);
  }

  std::vector<Symbol> label_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;
  std::vector<int> depth_;
  std::vector<NodeId> subtree_end_;
  std::vector<int> subtree_size_;
  std::vector<int> child_count_;
};

/// Incremental preorder construction of a `Tree`:
///
///   TreeBuilder b;
///   b.Begin(a); b.Begin(bq); b.End(); b.End();
///   Tree t = std::move(b).Finish().ValueOrDie();
///
/// `Begin` opens a node (as child of the innermost open node), `End` closes
/// the innermost open node. `Finish` validates that exactly one root was
/// built and all nodes are closed.
class TreeBuilder {
 public:
  TreeBuilder() = default;

  /// Opens a new node labelled `label`; returns its id.
  NodeId Begin(Symbol label);

  /// Closes the innermost open node. Aborts if none is open.
  void End();

  /// Convenience: Begin + End.
  NodeId Leaf(Symbol label) {
    const NodeId id = Begin(label);
    End();
    return id;
  }

  /// Finalizes the tree. Fails if zero or multiple roots were built or a
  /// node is still open.
  Result<Tree> Finish() &&;

 private:
  Tree tree_;
  std::vector<NodeId> open_;
  int root_count_ = 0;
};

}  // namespace xptc

#endif  // XPTC_TREE_TREE_H_
