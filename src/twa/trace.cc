#include "twa/trace.h"

#include <algorithm>
#include <set>

#include "common/bitset.h"
#include "common/check.h"

namespace xptc {

namespace {

uint8_t FlagsAt(const Tree& tree, NodeId node, NodeId run_root) {
  uint8_t flags = 0;
  if (node == run_root) {
    flags |= kFlagRoot | kFlagFirst | kFlagLast;
  } else {
    if (tree.IsFirstSibling(node)) flags |= kFlagFirst;
    if (tree.IsLastSibling(node)) flags |= kFlagLast;
  }
  if (tree.IsLeaf(node)) flags |= kFlagLeaf;
  return flags;
}

bool GuardHolds(const Guard& guard, Symbol label, uint8_t flags,
                NodeId node, const TestOracle* oracle) {
  if ((flags & guard.required_flags) != guard.required_flags) return false;
  if ((flags & guard.forbidden_flags) != 0) return false;
  if (!guard.labels.empty() &&
      std::find(guard.labels.begin(), guard.labels.end(), label) ==
          guard.labels.end()) {
    return false;
  }
  for (const auto& [automaton, expected] : guard.tests) {
    XPTC_CHECK(oracle != nullptr) << "nested test without an oracle";
    if ((*oracle)[static_cast<size_t>(automaton)].Get(node) != expected) {
      return false;
    }
  }
  return true;
}

NodeId ApplyMove(const Tree& tree, NodeId node, NodeId run_root, Move move) {
  switch (move) {
    case Move::kStay:
      return node;
    case Move::kUp:
      return node == run_root ? kNoNode : tree.Parent(node);
    case Move::kDownFirst:
      return tree.FirstChild(node);
    case Move::kDownLast:
      return tree.LastChild(node);
    case Move::kLeft:
      return node == run_root ? kNoNode : tree.PrevSibling(node);
    case Move::kRight:
      return node == run_root ? kNoNode : tree.NextSibling(node);
  }
  return kNoNode;
}

}  // namespace

const char* RunOutcomeToString(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kAccepted:
      return "accepted";
    case RunOutcome::kRejectedStuck:
      return "rejected (stuck)";
    case RunOutcome::kRejectedLoop:
      return "rejected (loop)";
  }
  return "?";
}

std::string RunTrace::ToString(const Twa& twa, const Tree& tree,
                               const Alphabet& alphabet) const {
  std::string out;
  for (const TraceStep& step : steps) {
    out += "  q" + std::to_string(step.state) + " @ " +
           alphabet.Name(tree.Label(step.node)) + "#" +
           std::to_string(step.node);
    if (step.transition_index >= 0) {
      const Transition& t =
          twa.transitions[static_cast<size_t>(step.transition_index)];
      out += std::string("  --") + MoveToString(t.move) + "-->";
    }
    out += "\n";
  }
  out += std::string("  => ") + RunOutcomeToString(outcome) + "\n";
  return out;
}

Result<RunTrace> TraceRun(const Twa& twa, const Tree& tree, NodeId root,
                          const TestOracle* oracle) {
  RunTrace trace;
  Bitset accepting(twa.num_states);
  for (int state : twa.accepting_states) accepting.Set(state);
  const int width = tree.SubtreeEnd(root) - root;
  Bitset visited(twa.num_states * width);
  int state = twa.initial_state;
  NodeId node = root;
  for (;;) {
    const int config = state * width + (node - root);
    if (visited.Get(config)) {
      trace.steps.push_back({state, node, -1});
      trace.outcome = RunOutcome::kRejectedLoop;
      return trace;
    }
    visited.Set(config);
    if (accepting.Get(state) && (!twa.accept_at_root || node == root)) {
      trace.steps.push_back({state, node, -1});
      trace.outcome = RunOutcome::kAccepted;
      return trace;
    }
    const uint8_t flags = FlagsAt(tree, node, root);
    const Symbol label = tree.Label(node);
    int enabled = -1;
    for (size_t i = 0; i < twa.transitions.size(); ++i) {
      const Transition& t = twa.transitions[i];
      if (t.state != state) continue;
      if (!GuardHolds(t.guard, label, flags, node, oracle)) continue;
      if (enabled >= 0) {
        return Status::InvalidArgument(
            "nondeterministic configuration: transitions " +
            std::to_string(enabled) + " and " + std::to_string(i) +
            " both enabled in state " + std::to_string(state));
      }
      enabled = static_cast<int>(i);
    }
    if (enabled < 0) {
      trace.steps.push_back({state, node, -1});
      trace.outcome = RunOutcome::kRejectedStuck;
      return trace;
    }
    const Transition& taken =
        twa.transitions[static_cast<size_t>(enabled)];
    const NodeId next = ApplyMove(tree, node, root, taken.move);
    trace.steps.push_back({state, node, enabled});
    if (next == kNoNode) {
      trace.outcome = RunOutcome::kRejectedStuck;
      return trace;
    }
    state = taken.next_state;
    node = next;
  }
}

Status CheckDeterministic(const Twa& twa,
                          const std::vector<Symbol>& universe) {
  // Consistent flag patterns under run semantics: the run root always
  // observes first & last; non-roots observe any first/last combination.
  std::vector<uint8_t> patterns;
  for (const uint8_t leaf : {uint8_t{0}, static_cast<uint8_t>(kFlagLeaf)}) {
    patterns.push_back(
        static_cast<uint8_t>(kFlagRoot | kFlagFirst | kFlagLast | leaf));
    for (const uint8_t first :
         {uint8_t{0}, static_cast<uint8_t>(kFlagFirst)}) {
      for (const uint8_t last :
           {uint8_t{0}, static_cast<uint8_t>(kFlagLast)}) {
        patterns.push_back(static_cast<uint8_t>(first | last | leaf));
      }
    }
  }
  // Nested tests mentioned anywhere in guards of the same state.
  for (int state = 0; state < twa.num_states; ++state) {
    std::set<int> tests;
    for (const Transition& t : twa.transitions) {
      if (t.state != state) continue;
      for (const auto& [automaton, expected] : t.guard.tests) {
        (void)expected;
        tests.insert(automaton);
      }
    }
    if (tests.size() > 16) {
      return Status::NotSupported("too many distinct nested tests per state");
    }
    const std::vector<int> test_ids(tests.begin(), tests.end());
    const uint32_t combos = uint32_t{1} << test_ids.size();
    for (const Symbol label : universe) {
      for (const uint8_t flags : patterns) {
        for (uint32_t combo = 0; combo < combos; ++combo) {
          int enabled = -1;
          for (size_t i = 0; i < twa.transitions.size(); ++i) {
            const Transition& t = twa.transitions[i];
            if (t.state != state) continue;
            if ((flags & t.guard.required_flags) != t.guard.required_flags) {
              continue;
            }
            if ((flags & t.guard.forbidden_flags) != 0) continue;
            if (!t.guard.labels.empty() &&
                std::find(t.guard.labels.begin(), t.guard.labels.end(),
                          label) == t.guard.labels.end()) {
              continue;
            }
            bool tests_match = true;
            for (const auto& [automaton, expected] : t.guard.tests) {
              const size_t bit = static_cast<size_t>(
                  std::find(test_ids.begin(), test_ids.end(), automaton) -
                  test_ids.begin());
              if (((combo >> bit) & 1) != static_cast<uint32_t>(expected)) {
                tests_match = false;
                break;
              }
            }
            if (!tests_match) continue;
            if (enabled >= 0) {
              return Status::InvalidArgument(
                  "transitions " + std::to_string(enabled) + " and " +
                  std::to_string(i) + " overlap in state " +
                  std::to_string(state));
            }
            enabled = static_cast<int>(i);
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace xptc
