#ifndef XPTC_TWA_TWA_H_
#define XPTC_TWA_TWA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/alphabet.h"
#include "common/bitset.h"
#include "common/result.h"
#include "common/status.h"
#include "tree/tree.h"

namespace xptc {

/// Head moves of a tree-walking automaton over sibling-ordered unranked
/// trees. A move that does not exist at the current node (Up at the run
/// root, DownFirst at a leaf, Left/Right where there is no sibling — the
/// run root never has siblings) simply yields no successor configuration.
enum class Move {
  kStay,
  kUp,
  kDownFirst,  // to the first child
  kDownLast,   // to the last child
  kLeft,       // to the previous sibling
  kRight,      // to the next sibling
};

const char* MoveToString(Move move);

/// Observation flags a TWA can test at the current node, *relative to the
/// run root* (the root of the subtree the automaton was launched on): the
/// run root observes is_root and, having no siblings in its subtree, also
/// is_first and is_last.
enum NodeFlag : uint8_t {
  kFlagRoot = 1,
  kFlagLeaf = 2,
  kFlagFirst = 4,
  kFlagLast = 8,
};

/// Transition guard. A transition is enabled at a node iff
///  - the node's label is in `labels` (empty = any label), and
///  - all `required_flags` are set and no `forbidden_flags` is set, and
///  - every nested test agrees: test (i, expected) holds iff automaton `i`
///    of the surrounding hierarchy accepts the subtree of the current node
///    with acceptance == expected. Plain TWA must have empty `tests`.
struct Guard {
  std::vector<Symbol> labels;
  uint8_t required_flags = 0;
  uint8_t forbidden_flags = 0;
  std::vector<std::pair<int, bool>> tests;
};

struct Transition {
  int state;
  Guard guard;
  Move move;
  int next_state;
};

/// A (nondeterministic) tree-walking automaton. The automaton is launched
/// in `initial_state` at the run root and accepts iff some run reaches an
/// accepting state (at the run root again, if `accept_at_root` is set).
///
/// When used inside a `NestedTwa`, guards may carry subtree tests referring
/// to automata lower in the hierarchy.
struct Twa {
  int num_states = 0;
  int initial_state = 0;
  std::vector<int> accepting_states;
  bool accept_at_root = false;
  std::vector<Transition> transitions;

  /// Structural validation (state indices in range, tests sorted out by the
  /// NestedTwa that owns this automaton).
  Status Validate() const;

  /// Total number of transitions (a size measure for experiments).
  int size() const { return static_cast<int>(transitions.size()); }
};

/// Oracle of precomputed subtree-acceptance bits for nested tests:
/// oracle[i].Get(v) == automaton i accepts the subtree rooted at v.
using TestOracle = std::vector<Bitset>;

/// Runs `twa` on the subtree of `tree` rooted at `root` (the whole tree
/// when `root` is the tree root), using `oracle` to answer nested tests
/// (may be null when the automaton has none). Polynomial: BFS over the
/// |Q|·|subtree| configuration graph.
bool RunTwa(const Twa& twa, const Tree& tree, NodeId root,
            const TestOracle* oracle);

/// A nested tree-walking automaton: a hierarchy `automata[0..k]` where
/// guards of `automata[i]` may test subtree acceptance of any `automata[j]`
/// with j < i. The top automaton is the last one.
class NestedTwa {
 public:
  NestedTwa() = default;
  explicit NestedTwa(std::vector<Twa> automata)
      : automata_(std::move(automata)) {}

  /// Validates the hierarchy: each automaton is valid and only tests
  /// strictly lower automata.
  Status Validate() const;

  const std::vector<Twa>& automata() const { return automata_; }
  const Twa& top() const { return automata_.back(); }
  bool empty() const { return automata_.empty(); }

  /// Appends an automaton and returns its index (usable in tests of later
  /// automata).
  int Add(Twa twa) {
    automata_.push_back(std::move(twa));
    return static_cast<int>(automata_.size()) - 1;
  }

  /// Length of the longest chain of test references + 1 (1 = plain TWA).
  int NestingDepth() const;

  /// Total number of states across the hierarchy.
  int TotalStates() const;
  /// Total number of transitions across the hierarchy.
  int TotalTransitions() const;

  /// Computes subtree-acceptance bits for every automaton at every node,
  /// innermost automata first. O(Σ_i |Q_i| · n²) overall.
  TestOracle ComputeOracle(const Tree& tree) const;

  /// Acceptance of the whole tree by the top automaton.
  bool Accepts(const Tree& tree) const;

  /// Per-node subtree acceptance of the top automaton.
  Bitset AcceptingSubtrees(const Tree& tree) const;

 private:
  std::vector<Twa> automata_;
};

// ---------------------------------------------------------------------------
// A small library of concretely constructed automata (tests, examples, and
// the separation experiment's "easy" controls).

/// Nondeterministic TWA accepting subtrees containing a node labelled
/// `label` (walks down nondeterministically).
Twa MakeReachLabelTwa(Symbol label);

/// Deterministic TWA performing a full depth-first traversal of the
/// subtree and accepting iff *every* node's label is in `allowed`. A
/// classical DTWA construction: systematic DFS with Up/DownFirst/Right
/// moves and first/last observations.
Twa MakeAllLabelsTwa(const std::vector<Symbol>& allowed);

/// Deterministic TWA accepting iff the leftmost path (root, first child,
/// first child of that, ...) has length exactly `depth` edges.
Twa MakeLeftSpineDepthTwa(int depth);

}  // namespace xptc

#endif  // XPTC_TWA_TWA_H_
