#include "twa/brute.h"

#include <limits>

#include "common/check.h"

namespace xptc {

bool RunDtwaTable(const DtwaTable& dtwa, const Tree& tree,
                  const std::vector<int>& label_index_of_symbol) {
  const int n = tree.size();
  // A deterministic run that revisits a configuration loops forever, so
  // |Q| * n + 1 steps suffice to decide.
  const int64_t step_limit = static_cast<int64_t>(dtwa.num_states) * n + 1;
  int state = 0;
  NodeId node = tree.root();
  for (int64_t step = 0; step < step_limit; ++step) {
    const Symbol symbol = tree.Label(node);
    XPTC_DCHECK(static_cast<size_t>(symbol) < label_index_of_symbol.size());
    const int label_index = label_index_of_symbol[static_cast<size_t>(symbol)];
    XPTC_DCHECK(label_index >= 0 && label_index < dtwa.num_labels);
    const int obs = DtwaTable::ObsIndex(
        label_index, tree.IsLeaf(node),
        node == tree.root() || tree.IsLastSibling(node));
    const DtwaTable::Action& action = dtwa.At(state, obs);
    switch (action.kind) {
      case DtwaTable::ActionKind::kAccept:
        return true;
      case DtwaTable::ActionKind::kReject:
        return false;
      case DtwaTable::ActionKind::kMove: {
        NodeId next = kNoNode;
        switch (action.move) {
          case Move::kStay:
            next = node;
            break;
          case Move::kUp:
            next = tree.Parent(node);
            break;
          case Move::kDownFirst:
            next = tree.FirstChild(node);
            break;
          case Move::kDownLast:
            next = tree.LastChild(node);
            break;
          case Move::kLeft:
            next = tree.PrevSibling(node);
            break;
          case Move::kRight:
            next = tree.NextSibling(node);
            break;
        }
        if (next == kNoNode) return false;  // stuck
        node = next;
        state = action.next_state;
        break;
      }
    }
  }
  return false;  // configuration cycle
}

namespace {

DtwaTable::Action NthAction(int index, int num_states,
                            const std::vector<Move>& moves) {
  DtwaTable::Action action;
  if (index == 0) {
    action.kind = DtwaTable::ActionKind::kAccept;
  } else if (index == 1) {
    action.kind = DtwaTable::ActionKind::kReject;
  } else {
    const int move_index = (index - 2) % static_cast<int>(moves.size());
    const int state = (index - 2) / static_cast<int>(moves.size());
    action.kind = DtwaTable::ActionKind::kMove;
    action.move = moves[static_cast<size_t>(move_index)];
    action.next_state = state;
    XPTC_DCHECK(state < num_states);
  }
  return action;
}

int NumActions(int num_states, int num_moves) {
  return 2 + num_states * num_moves;
}

}  // namespace

DtwaTable RandomDtwa(int num_states, int num_labels,
                     const std::vector<Move>& moves, Rng* rng) {
  XPTC_CHECK_GT(num_states, 0);
  XPTC_CHECK_GT(num_labels, 0);
  XPTC_CHECK(!moves.empty());
  DtwaTable dtwa;
  dtwa.num_states = num_states;
  dtwa.num_labels = num_labels;
  dtwa.table.resize(static_cast<size_t>(num_states) * dtwa.NumObs());
  const int actions = NumActions(num_states, static_cast<int>(moves.size()));
  for (auto& cell : dtwa.table) {
    cell = NthAction(rng->NextInt(0, actions - 1), num_states, moves);
  }
  return dtwa;
}

void MutateDtwa(DtwaTable* dtwa, const std::vector<Move>& moves, Rng* rng) {
  const int actions =
      NumActions(dtwa->num_states, static_cast<int>(moves.size()));
  auto& cell = dtwa->table[rng->NextBelow(dtwa->table.size())];
  cell = NthAction(rng->NextInt(0, actions - 1), dtwa->num_states, moves);
}

int64_t CountDtwaTables(int num_states, int num_labels, int num_moves) {
  const int actions = NumActions(num_states, num_moves);
  const int cells = num_states * num_labels * 4;
  int64_t count = 1;
  for (int i = 0; i < cells; ++i) {
    if (count > std::numeric_limits<int64_t>::max() / actions) {
      return std::numeric_limits<int64_t>::max();
    }
    count *= actions;
  }
  return count;
}

int64_t EnumerateDtwa(int num_states, int num_labels,
                      const std::vector<Move>& moves, int64_t limit,
                      const std::function<void(const DtwaTable&)>& fn) {
  const int64_t space =
      CountDtwaTables(num_states, num_labels, static_cast<int>(moves.size()));
  XPTC_CHECK_LE(space, limit)
      << "DTWA space too large for exhaustive enumeration";
  DtwaTable dtwa;
  dtwa.num_states = num_states;
  dtwa.num_labels = num_labels;
  const int cells = num_states * dtwa.NumObs();
  dtwa.table.assign(static_cast<size_t>(cells), DtwaTable::Action{});
  const int actions = NumActions(num_states, static_cast<int>(moves.size()));
  std::vector<int> odometer(static_cast<size_t>(cells), 0);
  int64_t count = 0;
  for (;;) {
    for (int c = 0; c < cells; ++c) {
      dtwa.table[static_cast<size_t>(c)] =
          NthAction(odometer[static_cast<size_t>(c)], num_states, moves);
    }
    fn(dtwa);
    ++count;
    int position = 0;
    while (position < cells &&
           ++odometer[static_cast<size_t>(position)] == actions) {
      odometer[static_cast<size_t>(position)] = 0;
      ++position;
    }
    if (position == cells) break;
  }
  return count;
}

}  // namespace xptc
