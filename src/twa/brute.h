#ifndef XPTC_TWA_BRUTE_H_
#define XPTC_TWA_BRUTE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "tree/tree.h"
#include "twa/twa.h"

namespace xptc {

/// A *total deterministic* tree-walking automaton in dense table form, the
/// search space of the separation experiment (E7). The observation at a
/// node is (label index, is_leaf, is_last_sibling); each (state,
/// observation) cell holds exactly one action: accept, reject, or
/// (move, next state). A move that does not exist at the current node, and
/// any revisited configuration (deterministic runs loop forever once a
/// configuration repeats), reject.
///
/// This model is deliberately smaller than `Twa` (no root/first flags, no
/// nesting) so the enumeration space for k = 1 is exhaustible; it still
/// contains standard DFS traversals via Up/DownFirst/Right.
struct DtwaTable {
  enum class ActionKind : uint8_t { kAccept, kReject, kMove };
  struct Action {
    ActionKind kind = ActionKind::kReject;
    Move move = Move::kStay;
    int next_state = 0;
  };

  int num_states = 1;
  int num_labels = 1;
  std::vector<Action> table;  // indexed [state * NumObs() + obs]

  /// Observations per state: label × {leaf, inner} × {last, not-last}.
  int NumObs() const { return num_labels * 4; }
  static int ObsIndex(int label_index, bool is_leaf, bool is_last) {
    return label_index * 4 + (is_leaf ? 2 : 0) + (is_last ? 1 : 0);
  }
  Action& At(int state, int obs) {
    return table[static_cast<size_t>(state * NumObs() + obs)];
  }
  const Action& At(int state, int obs) const {
    return table[static_cast<size_t>(state * NumObs() + obs)];
  }
};

/// Runs the table automaton on `tree` from the root. `label_index` is
/// looked up through `label_of`: the caller maps the tree's symbols into
/// [0, num_labels). Rejects on stuck moves and on configuration repetition.
bool RunDtwaTable(const DtwaTable& dtwa, const Tree& tree,
                  const std::vector<int>& label_index_of_symbol);

/// Uniformly random total DTWA over the given move set.
DtwaTable RandomDtwa(int num_states, int num_labels,
                     const std::vector<Move>& moves, Rng* rng);

/// Replaces one uniformly chosen cell with a fresh random action (the
/// neighborhood step of the hill-climbing search).
void MutateDtwa(DtwaTable* dtwa, const std::vector<Move>& moves, Rng* rng);

/// Number of distinct tables with the given parameters
/// ((2 + |moves|·states)^(states·obs)); saturates at INT64_MAX.
int64_t CountDtwaTables(int num_states, int num_labels, int num_moves);

/// Enumerates every total DTWA over the move set, invoking `fn` for each.
/// Returns the count. Use only when CountDtwaTables is small (e.g. one
/// state, restricted moves); aborts if the space exceeds `limit`.
int64_t EnumerateDtwa(int num_states, int num_labels,
                      const std::vector<Move>& moves, int64_t limit,
                      const std::function<void(const DtwaTable&)>& fn);

}  // namespace xptc

#endif  // XPTC_TWA_BRUTE_H_
