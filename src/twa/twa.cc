#include "twa/twa.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace xptc {

const char* MoveToString(Move move) {
  switch (move) {
    case Move::kStay:
      return "stay";
    case Move::kUp:
      return "up";
    case Move::kDownFirst:
      return "down1";
    case Move::kDownLast:
      return "downN";
    case Move::kLeft:
      return "left";
    case Move::kRight:
      return "right";
  }
  return "?";
}

Status Twa::Validate() const {
  if (num_states <= 0) {
    return Status::InvalidArgument("TWA must have at least one state");
  }
  auto state_ok = [this](int state) {
    return state >= 0 && state < num_states;
  };
  if (!state_ok(initial_state)) {
    return Status::InvalidArgument("initial state out of range");
  }
  for (int state : accepting_states) {
    if (!state_ok(state)) {
      return Status::InvalidArgument("accepting state out of range");
    }
  }
  for (const Transition& t : transitions) {
    if (!state_ok(t.state) || !state_ok(t.next_state)) {
      return Status::InvalidArgument("transition state out of range");
    }
    if ((t.guard.required_flags & t.guard.forbidden_flags) != 0) {
      return Status::InvalidArgument(
          "guard requires and forbids the same flag");
    }
  }
  return Status::OK();
}

namespace {

uint8_t FlagsAt(const Tree& tree, NodeId node, NodeId run_root) {
  uint8_t flags = 0;
  if (node == run_root) {
    // The run root is the root of its subtree and has no siblings there.
    flags |= kFlagRoot | kFlagFirst | kFlagLast;
  } else {
    if (tree.IsFirstSibling(node)) flags |= kFlagFirst;
    if (tree.IsLastSibling(node)) flags |= kFlagLast;
  }
  if (tree.IsLeaf(node)) flags |= kFlagLeaf;
  return flags;
}

bool GuardHolds(const Guard& guard, const Tree& tree, NodeId node,
                uint8_t flags, const TestOracle* oracle) {
  if ((flags & guard.required_flags) != guard.required_flags) return false;
  if ((flags & guard.forbidden_flags) != 0) return false;
  if (!guard.labels.empty()) {
    const Symbol label = tree.Label(node);
    if (std::find(guard.labels.begin(), guard.labels.end(), label) ==
        guard.labels.end()) {
      return false;
    }
  }
  for (const auto& [automaton, expected] : guard.tests) {
    XPTC_CHECK(oracle != nullptr) << "nested test without an oracle";
    XPTC_CHECK_GE(automaton, 0);
    XPTC_CHECK_LT(static_cast<size_t>(automaton), oracle->size());
    if ((*oracle)[static_cast<size_t>(automaton)].Get(node) != expected) {
      return false;
    }
  }
  return true;
}

// Applies a move at `node` inside the subtree rooted at `run_root`;
// returns kNoNode if the move does not exist there.
NodeId ApplyMove(const Tree& tree, NodeId node, NodeId run_root, Move move) {
  switch (move) {
    case Move::kStay:
      return node;
    case Move::kUp:
      return node == run_root ? kNoNode : tree.Parent(node);
    case Move::kDownFirst:
      return tree.FirstChild(node);
    case Move::kDownLast:
      return tree.LastChild(node);
    case Move::kLeft:
      return node == run_root ? kNoNode : tree.PrevSibling(node);
    case Move::kRight:
      return node == run_root ? kNoNode : tree.NextSibling(node);
  }
  return kNoNode;
}

}  // namespace

bool RunTwa(const Twa& twa, const Tree& tree, NodeId root,
            const TestOracle* oracle) {
  const NodeId lo = root;
  const NodeId hi = tree.SubtreeEnd(root);
  const int width = hi - lo;
  // Configurations are (state, node); visited is indexed densely.
  Bitset visited(twa.num_states * width);
  auto config_index = [&](int state, NodeId node) {
    return state * width + (node - lo);
  };
  Bitset accepting(twa.num_states);
  for (int state : twa.accepting_states) accepting.Set(state);

  auto is_accepting = [&](int state, NodeId node) {
    return accepting.Get(state) && (!twa.accept_at_root || node == root);
  };

  std::deque<std::pair<int, NodeId>> queue;
  visited.Set(config_index(twa.initial_state, root));
  if (is_accepting(twa.initial_state, root)) return true;
  queue.emplace_back(twa.initial_state, root);

  // Cache flags per node on demand (cheap enough to recompute).
  while (!queue.empty()) {
    const auto [state, node] = queue.front();
    queue.pop_front();
    const uint8_t flags = FlagsAt(tree, node, root);
    for (const Transition& t : twa.transitions) {
      if (t.state != state) continue;
      if (!GuardHolds(t.guard, tree, node, flags, oracle)) continue;
      const NodeId next = ApplyMove(tree, node, root, t.move);
      if (next == kNoNode) continue;
      const int index = config_index(t.next_state, next);
      if (visited.Get(index)) continue;
      visited.Set(index);
      if (is_accepting(t.next_state, next)) return true;
      queue.emplace_back(t.next_state, next);
    }
  }
  return false;
}

Status NestedTwa::Validate() const {
  if (automata_.empty()) {
    return Status::InvalidArgument("nested TWA hierarchy is empty");
  }
  for (size_t i = 0; i < automata_.size(); ++i) {
    XPTC_RETURN_NOT_OK(automata_[i].Validate());
    for (const Transition& t : automata_[i].transitions) {
      for (const auto& [automaton, expected] : t.guard.tests) {
        (void)expected;
        if (automaton < 0 || static_cast<size_t>(automaton) >= i) {
          return Status::InvalidArgument(
              "automaton " + std::to_string(i) +
              " tests non-lower automaton " + std::to_string(automaton));
        }
      }
    }
  }
  return Status::OK();
}

int NestedTwa::NestingDepth() const {
  // depth[i] = 1 + max depth of tested automata (0 if no tests).
  std::vector<int> depth(automata_.size(), 1);
  for (size_t i = 0; i < automata_.size(); ++i) {
    for (const Transition& t : automata_[i].transitions) {
      for (const auto& [automaton, expected] : t.guard.tests) {
        (void)expected;
        depth[i] = std::max(depth[i], depth[static_cast<size_t>(automaton)] + 1);
      }
    }
  }
  int max_depth = 0;
  for (int d : depth) max_depth = std::max(max_depth, d);
  return max_depth;
}

int NestedTwa::TotalStates() const {
  int total = 0;
  for (const Twa& twa : automata_) total += twa.num_states;
  return total;
}

int NestedTwa::TotalTransitions() const {
  int total = 0;
  for (const Twa& twa : automata_) total += twa.size();
  return total;
}

TestOracle NestedTwa::ComputeOracle(const Tree& tree) const {
  TestOracle oracle;
  oracle.reserve(automata_.size());
  for (const Twa& twa : automata_) {
    Bitset bits(tree.size());
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (RunTwa(twa, tree, v, &oracle)) bits.Set(v);
    }
    oracle.push_back(std::move(bits));
  }
  return oracle;
}

bool NestedTwa::Accepts(const Tree& tree) const {
  XPTC_CHECK(!automata_.empty());
  // Only the lower automata's bits are needed; computing all is simpler and
  // the last entry is exactly AcceptingSubtrees of the top automaton.
  TestOracle oracle;
  for (size_t i = 0; i + 1 < automata_.size(); ++i) {
    Bitset bits(tree.size());
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (RunTwa(automata_[i], tree, v, &oracle)) bits.Set(v);
    }
    oracle.push_back(std::move(bits));
  }
  return RunTwa(top(), tree, tree.root(), &oracle);
}

Bitset NestedTwa::AcceptingSubtrees(const Tree& tree) const {
  XPTC_CHECK(!automata_.empty());
  return ComputeOracle(tree).back();
}

Twa MakeReachLabelTwa(Symbol label) {
  // State 0: searching; state 1: found.
  Twa twa;
  twa.num_states = 2;
  twa.initial_state = 0;
  twa.accepting_states = {1};
  // Found it here?
  twa.transitions.push_back({0, Guard{{label}, 0, 0, {}}, Move::kStay, 1});
  // Otherwise walk down nondeterministically: to the first child, then
  // sideways among siblings.
  twa.transitions.push_back({0, Guard{}, Move::kDownFirst, 0});
  twa.transitions.push_back({0, Guard{}, Move::kRight, 0});
  return twa;
}

Twa MakeAllLabelsTwa(const std::vector<Symbol>& allowed) {
  // Deterministic DFS. States: 0 = kGo (first arrival at a node, label is
  // checked here), 1 = kBack (subtree of the node fully traversed),
  // 2 = accept.
  constexpr int kGo = 0, kBack = 1, kAccept = 2;
  Twa twa;
  twa.num_states = 3;
  twa.initial_state = kGo;
  twa.accepting_states = {kAccept};
  Guard ok;  // label must be allowed
  ok.labels = allowed;
  // kGo at an inner node: descend.
  {
    Guard g = ok;
    g.forbidden_flags = kFlagLeaf;
    twa.transitions.push_back({kGo, g, Move::kDownFirst, kGo});
  }
  // kGo at a leaf with a right sibling: advance.
  {
    Guard g = ok;
    g.required_flags = kFlagLeaf;
    g.forbidden_flags = kFlagLast;
    twa.transitions.push_back({kGo, g, Move::kRight, kGo});
  }
  // kGo at a last leaf that is not the run root: pop.
  {
    Guard g = ok;
    g.required_flags = kFlagLeaf | kFlagLast;
    g.forbidden_flags = kFlagRoot;
    twa.transitions.push_back({kGo, g, Move::kUp, kBack});
  }
  // kGo at a leaf run root: the whole (one-node) subtree is fine.
  {
    Guard g = ok;
    g.required_flags = kFlagLeaf | kFlagRoot;
    twa.transitions.push_back({kGo, g, Move::kStay, kAccept});
  }
  // kBack at a node with a right sibling: advance (label already checked).
  {
    Guard g;
    g.forbidden_flags = kFlagLast;
    twa.transitions.push_back({kBack, g, Move::kRight, kGo});
  }
  // kBack at a last node that is not the run root: pop.
  {
    Guard g;
    g.required_flags = kFlagLast;
    g.forbidden_flags = kFlagRoot;
    twa.transitions.push_back({kBack, g, Move::kUp, kBack});
  }
  // kBack at the run root: traversal complete.
  {
    Guard g;
    g.required_flags = kFlagRoot;
    twa.transitions.push_back({kBack, g, Move::kStay, kAccept});
  }
  return twa;
}

Twa MakeLeftSpineDepthTwa(int depth) {
  XPTC_CHECK_GE(depth, 0);
  // States 0..depth walk the leftmost path; state depth requires a leaf.
  Twa twa;
  twa.num_states = depth + 2;
  twa.initial_state = 0;
  const int accept = depth + 1;
  twa.accepting_states = {accept};
  for (int d = 0; d < depth; ++d) {
    Guard g;
    g.forbidden_flags = kFlagLeaf;
    twa.transitions.push_back({d, g, Move::kDownFirst, d + 1});
  }
  Guard at_leaf;
  at_leaf.required_flags = kFlagLeaf;
  twa.transitions.push_back({depth, at_leaf, Move::kStay, accept});
  return twa;
}

}  // namespace xptc
