#ifndef XPTC_TWA_TRACE_H_
#define XPTC_TWA_TRACE_H_

#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/result.h"
#include "common/status.h"
#include "tree/tree.h"
#include "twa/twa.h"

namespace xptc {

/// How a traced deterministic run ended.
enum class RunOutcome {
  kAccepted,
  kRejectedStuck,  // no enabled transition / move does not exist
  kRejectedLoop,   // configuration repeated (deterministic ⇒ diverges)
};

const char* RunOutcomeToString(RunOutcome outcome);

/// One configuration of a traced run, plus the transition taken to leave it
/// (index into `twa.transitions`, or -1 for the final configuration).
struct TraceStep {
  int state;
  NodeId node;
  int transition_index;
};

struct RunTrace {
  RunOutcome outcome;
  std::vector<TraceStep> steps;

  /// Human-readable rendering: one "state @ label(node) --move-->" line per
  /// step.
  std::string ToString(const Twa& twa, const Tree& tree,
                       const Alphabet& alphabet) const;
};

/// Steps a *deterministic* automaton through the subtree of `root`,
/// recording every configuration. Fails with InvalidArgument if two
/// transitions are simultaneously enabled at some reached configuration
/// (i.e. the automaton is nondeterministic on this input).
Result<RunTrace> TraceRun(const Twa& twa, const Tree& tree, NodeId root,
                          const TestOracle* oracle = nullptr);

/// Static determinism check relative to a label universe: verifies that no
/// two transitions of any state can be enabled under the same observation
/// (label × consistent flag pattern × nested-test outcome). Sound and
/// complete for automata whose guards only mention `universe` labels.
Status CheckDeterministic(const Twa& twa,
                          const std::vector<Symbol>& universe);

}  // namespace xptc

#endif  // XPTC_TWA_TRACE_H_
