#ifndef XPTC_COMMON_RNG_H_
#define XPTC_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace xptc {

/// Deterministic, seedable pseudo-random generator (xorshift128+). All
/// randomized workloads in the library (tree generators, query generators,
/// automaton samplers) take an explicit `Rng` so experiments are exactly
/// reproducible from a seed; no global RNG state exists anywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to avoid weak low-entropy states.
    state0_ = SplitMix(&seed);
    state1_ = SplitMix(&seed);
    if (state0_ == 0 && state1_ == 0) state1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = state0_;
    const uint64_t y = state1_;
    state0_ = y;
    x ^= x << 23;
    state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1_ + y;
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound) {
    XPTC_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias (only matters for huge bounds,
    // but it is cheap and keeps generated corpora unbiased).
    const uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform int in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    XPTC_CHECK_LE(lo, hi);
    return lo + static_cast<int>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return (Next() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Derives an independent child generator; useful for splitting one seed
  /// across workload components without correlation.
  Rng Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ull); }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace xptc

#endif  // XPTC_COMMON_RNG_H_
