#ifndef XPTC_COMMON_BITSET_H_
#define XPTC_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/simd.h"

namespace xptc {

/// Dense dynamic bitset sized at construction; the workhorse node-set
/// representation for evaluators (one bit per tree node).
///
/// Storage and padding invariants (every mutator preserves these; the
/// word-span kernels in common/simd.h rely on them):
///  - Words are 64-byte aligned (one cache line) and the word count is
///    rounded up to a multiple of 8, so vector kernels may always read
///    whole 64-byte blocks of the live range without running off the
///    allocation.
///  - "Live" words are the first WordCount(size) words; everything after
///    them is padding and is ZERO at all times. Bits >= size inside the
///    last live word are likewise always zero (`ClearPadding` re-masks
///    them after the only operations that can set them: SetAll and Flip).
///    Bulk operations touch live words only, so padding stays zero by
///    construction and `operator==` can compare raw word vectors.
class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(int size, bool value = false)
      : size_(size), words_(PaddedWordCount(size), 0) {
    XPTC_CHECK_GE(size, 0);
    if (value) SetAll();
  }

  int size() const { return size_; }

  /// Raw word storage (read-only): `word_count()` live words, 64-byte
  /// aligned, padding bits zero. The kernel benches and alignment tests
  /// read these; semantic callers should use the bit-level API.
  const uint64_t* words() const { return words_.data(); }
  size_t word_count() const { return LiveWords(); }

  /// Raw word storage (mutable): for kernels that assemble whole live
  /// words in place (the streaming axis kernels write gather results
  /// directly). Callers must preserve the storage invariants — live words
  /// only, padding bits stay zero.
  uint64_t* mutable_words() { return words_.data(); }

  bool Get(int i) const {
    XPTC_DCHECK(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    XPTC_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    XPTC_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Assign(int i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  void SetAll() {
    for (size_t wi = 0, n = LiveWords(); wi < n; ++wi) {
      words_[wi] = ~uint64_t{0};
    }
    ClearPadding();
  }
  void ResetAll() {
    for (size_t wi = 0, n = LiveWords(); wi < n; ++wi) words_[wi] = 0;
  }

  bool Any() const {
    return simd::Active().any_words(words_.data(), LiveWords());
  }
  bool None() const { return !Any(); }

  int Count() const {
    return static_cast<int>(
        simd::Active().popcount_words(words_.data(), LiveWords()));
  }

  /// Index of the lowest set bit, or -1 if empty.
  int FindFirst() const {
    for (size_t wi = 0, n = LiveWords(); wi < n; ++wi) {
      if (words_[wi] != 0) {
        return static_cast<int>(wi * 64) + __builtin_ctzll(words_[wi]);
      }
    }
    return -1;
  }

  /// Index of the next set bit strictly after `i`, or -1.
  int FindNext(int i) const {
    ++i;
    if (i >= size_) return -1;
    size_t wi = static_cast<size_t>(i) >> 6;
    const size_t n = LiveWords();
    uint64_t w = words_[wi] & (~uint64_t{0} << (i & 63));
    for (;;) {
      if (w != 0) return static_cast<int>(wi * 64) + __builtin_ctzll(w);
      if (++wi == n) return -1;
      w = words_[wi];
    }
  }

  /// Index of the first set bit in [lo, hi), or -1.
  int FindFirstInRange(int lo, int hi) const {
    CheckRange(lo, hi);
    if (lo >= hi) return -1;
    const int i = lo == 0 ? FindFirst() : FindNext(lo - 1);
    return (i >= 0 && i < hi) ? i : -1;
  }

  /// Index of the highest set bit, or -1 if empty.
  int FindLast() const { return FindLastInRange(0, size_); }

  /// Index of the highest set bit in [lo, hi), or -1.
  int FindLastInRange(int lo, int hi) const {
    CheckRange(lo, hi);
    if (lo >= hi) return -1;
    size_t wi = static_cast<size_t>(hi - 1) >> 6;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    uint64_t w = words_[wi] & TailMask(hi);
    for (;;) {
      if (wi == wlo) w &= HeadMask(lo);
      if (w != 0) {
        return static_cast<int>(wi * 64) + 63 - __builtin_clzll(w);
      }
      if (wi == wlo) return -1;
      w = words_[--wi];
    }
  }

  /// How many index slots a decode buffer must have beyond the number of
  /// set bits actually decoded: `DecodeWord`'s unrolled lanes may write up
  /// to `kDecodeSlack` garbage entries past the returned count.
  static constexpr int kDecodeSlack = 3;

  /// Decodes the set bits of `word` into `out[0..count)` as `base + bit`,
  /// lowest bit first, and returns `count = popcount(word)`. One unrolled
  /// pass, four bits per iteration, with no per-bit branch: each lane
  /// isolates the lowest set bit `t = w & -w` and derives its index as
  /// `popcount(t - 1)` (well defined for every lane — when `w` runs out
  /// mid-iteration the spent lanes write `base + 64` garbage past the
  /// count, which is why callers provide `kDecodeSlack` slots of slack;
  /// `ctz` is avoided because `ctz(0)` is UB).
  static int DecodeWord(uint64_t word, int base, int32_t* out) {
    const int count = __builtin_popcountll(word);
    int n = 0;
    while (word != 0) {
      uint64_t t = word & (~word + 1);
      out[n] = base + __builtin_popcountll(t - 1);
      word ^= t;
      t = word & (~word + 1);
      out[n + 1] = base + __builtin_popcountll(t - 1);
      word ^= t;
      t = word & (~word + 1);
      out[n + 2] = base + __builtin_popcountll(t - 1);
      word ^= t;
      t = word & (~word + 1);
      out[n + 3] = base + __builtin_popcountll(t - 1);
      word ^= t;
      n += 4;
    }
    return count;
  }

  /// Invokes `fn(const int32_t* indices, int count)` once per word
  /// overlapping [lo, hi) that has set bits in the range, with the word's
  /// set-bit indices batch-decoded (increasing order). The batched
  /// alternative to `ForEachSetBitInRange` for consumers with per-index
  /// work small enough that a lambda call per bit dominates: one decode
  /// pass plus one call per 64 bits instead of per bit.
  template <typename Fn>
  void ForEachSetBitBatch(int lo, int hi, Fn&& fn) const {
    CheckRange(lo, hi);
    if (lo >= hi) return;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    int32_t buf[64 + kDecodeSlack];
    for (size_t wi = wlo; wi <= whi; ++wi) {
      uint64_t w = words_[wi];
      if (wi == wlo) w &= HeadMask(lo);
      if (wi == whi) w &= TailMask(hi);
      if (w == 0) continue;
      const int count = DecodeWord(w, static_cast<int>(wi * 64), buf);
      fn(static_cast<const int32_t*>(buf), count);
    }
  }

  /// Decodes every set bit of [lo, hi) into `out` (increasing order) and
  /// returns the count. `out` must have `CountRange(lo, hi) + kDecodeSlack`
  /// slots: the words decode straight into the caller's buffer, so the
  /// final word's spent lanes may spill past the count.
  int DecodeRange(int lo, int hi, int32_t* out) const {
    CheckRange(lo, hi);
    if (lo >= hi) return 0;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    int n = 0;
    for (size_t wi = wlo; wi <= whi; ++wi) {
      uint64_t w = words_[wi];
      if (wi == wlo) w &= HeadMask(lo);
      if (wi == whi) w &= TailMask(hi);
      n += DecodeWord(w, static_cast<int>(wi * 64), out + n);
    }
    return n;
  }

  /// Invokes `fn(int index)` for every set bit, in increasing order, one
  /// word at a time (ctz iteration — no per-clear-bit work).
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0, n = LiveWords(); wi < n; ++wi) {
      for (uint64_t w = words_[wi]; w != 0; w &= w - 1) {
        fn(static_cast<int>(wi * 64) + __builtin_ctzll(w));
      }
    }
  }

  /// `ForEachSetBit` restricted to indices in [lo, hi).
  template <typename Fn>
  void ForEachSetBitInRange(int lo, int hi, Fn&& fn) const {
    CheckRange(lo, hi);
    if (lo >= hi) return;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    for (size_t wi = wlo; wi <= whi; ++wi) {
      uint64_t w = words_[wi];
      if (wi == wlo) w &= HeadMask(lo);
      if (wi == whi) w &= TailMask(hi);
      for (; w != 0; w &= w - 1) {
        fn(static_cast<int>(wi * 64) + __builtin_ctzll(w));
      }
    }
  }

  /// Sets every bit in [lo, hi); dispatched through the `fill_range`
  /// bit-ranged kernel (masked head/tail handled inside the kernel — the
  /// interval axis kernels call this once per subtree interval).
  void SetRange(int lo, int hi) {
    CheckRange(lo, hi);
    if (lo >= hi) return;
    simd::Active().fill_range(words_.data(), static_cast<size_t>(lo),
                              static_cast<size_t>(hi));
  }

  /// Clears every bit in [lo, hi).
  void ResetRange(int lo, int hi) {
    ForEachRangeWord(lo, hi,
                     [this](size_t wi, uint64_t mask) { words_[wi] &= ~mask; });
  }

  /// Popcount over [lo, hi).
  int CountRange(int lo, int hi) const {
    int64_t count = 0;
    ForEachRangeRun(
        lo, hi,
        [this, &count](size_t wi, uint64_t mask) {
          count += __builtin_popcountll(words_[wi] & mask);
        },
        [this, &count](size_t wi, size_t n) {
          count += simd::Active().popcount_words(&words_[wi], n);
        });
    return static_cast<int>(count);
  }

  /// True iff some bit in [lo, hi) is set.
  bool AnyInRange(int lo, int hi) const {
    CheckRange(lo, hi);
    if (lo >= hi) return false;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    if (wlo == whi) return (words_[wlo] & HeadMask(lo) & TailMask(hi)) != 0;
    size_t first_full = wlo;
    if ((lo & 63) != 0) {
      if ((words_[wlo] & HeadMask(lo)) != 0) return true;
      first_full = wlo + 1;
    }
    size_t last_full = whi;
    if ((hi & 63) != 0) {
      if ((words_[whi] & TailMask(hi)) != 0) return true;
      last_full = whi - 1;
    }
    return first_full <= last_full &&
           simd::Active().any_words(&words_[first_full],
                                    last_full - first_full + 1);
  }

  // Ranged compound assignments: exact [lo, hi) bit semantics (bits outside
  // the range are untouched), word-at-a-time inside. These are the kernels
  // the subtree-context evaluator runs on, so a context of s nodes costs
  // O(s/64 + 1) words per operation instead of O(|T|/64). Partial head/tail
  // words are handled with masks inline; the whole-word middle run goes
  // through the simd dispatch table (common/simd.h).

  /// this[lo,hi) |= other[lo,hi), via the `or_range` bit-ranged kernel.
  void OrRange(const Bitset& other, int lo, int hi) {
    XPTC_DCHECK(size_ == other.size_);
    CheckRange(lo, hi);
    if (lo >= hi) return;
    simd::Active().or_range(words_.data(), other.words_.data(),
                            static_cast<size_t>(lo), static_cast<size_t>(hi));
  }

  /// this[lo,hi) &= other[lo,hi).
  void AndRange(const Bitset& other, int lo, int hi) {
    XPTC_DCHECK(size_ == other.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &other](size_t wi, uint64_t mask) {
          words_[wi] &= other.words_[wi] | ~mask;
        },
        [this, &other](size_t wi, size_t n) {
          simd::Active().and_words(&words_[wi], &other.words_[wi], n);
        });
  }

  /// this[lo,hi) &= ~other[lo,hi).
  void SubtractRange(const Bitset& other, int lo, int hi) {
    XPTC_DCHECK(size_ == other.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &other](size_t wi, uint64_t mask) {
          words_[wi] &= ~(other.words_[wi] & mask);
        },
        [this, &other](size_t wi, size_t n) {
          simd::Active().andnot_words(&words_[wi], &other.words_[wi], n);
        });
  }

  /// this[lo,hi) = other[lo,hi).
  void CopyRange(const Bitset& other, int lo, int hi) {
    XPTC_DCHECK(size_ == other.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &other](size_t wi, uint64_t mask) {
          words_[wi] = (words_[wi] & ~mask) | (other.words_[wi] & mask);
        },
        [this, &other](size_t wi, size_t n) {
          simd::Active().copy_words(&words_[wi], &other.words_[wi], n);
        });
  }

  /// this[lo,hi) = ~other[lo,hi). The fused form of CopyRange + Flip that
  /// the compiled engine's kNot instruction runs (one pass, not two).
  void NotRange(const Bitset& other, int lo, int hi) {
    XPTC_DCHECK(size_ == other.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &other](size_t wi, uint64_t mask) {
          words_[wi] = (words_[wi] & ~mask) | (~other.words_[wi] & mask);
        },
        [this, &other](size_t wi, size_t n) {
          simd::Active().not_words(&words_[wi], &other.words_[wi], n);
        });
  }

  /// this[lo,hi) = a[lo,hi) & ~b[lo,hi). Fused kernel for the
  /// superoptimizer's kAndNot instruction: one pass where the unfused
  /// bytecode (copy, flip, and) takes three.
  void AndNotRange(const Bitset& a, const Bitset& b, int lo, int hi) {
    XPTC_DCHECK(size_ == a.size_ && size_ == b.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &a, &b](size_t wi, uint64_t mask) {
          words_[wi] =
              (words_[wi] & ~mask) | (a.words_[wi] & ~b.words_[wi] & mask);
        },
        [this, &a, &b](size_t wi, size_t n) {
          simd::Active().assign_andnot_words(&words_[wi], &a.words_[wi],
                                             &b.words_[wi], n);
        });
  }

  /// this[lo,hi) = a[lo,hi) | ~b[lo,hi). Fused kernel for kOrNot.
  void OrNotRange(const Bitset& a, const Bitset& b, int lo, int hi) {
    XPTC_DCHECK(size_ == a.size_ && size_ == b.size_);
    ForEachRangeRun(
        lo, hi,
        [this, &a, &b](size_t wi, uint64_t mask) {
          words_[wi] =
              (words_[wi] & ~mask) | ((a.words_[wi] | ~b.words_[wi]) & mask);
        },
        [this, &a, &b](size_t wi, size_t n) {
          simd::Active().assign_ornot_words(&words_[wi], &a.words_[wi],
                                            &b.words_[wi], n);
        });
  }

  /// True iff this[lo,hi) ⊆ other[lo,hi). Exits at the first word with an
  /// extra bit — the star-fixpoint convergence probe runs this every
  /// round, and non-final rounds fail fast.
  bool IsSubsetOfRange(const Bitset& other, int lo, int hi) const {
    XPTC_DCHECK(size_ == other.size_);
    CheckRange(lo, hi);
    if (lo >= hi) return true;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    if (wlo == whi) {
      return (words_[wlo] & ~other.words_[wlo] & HeadMask(lo) &
              TailMask(hi)) == 0;
    }
    size_t first_full = wlo;
    if ((lo & 63) != 0) {
      if ((words_[wlo] & ~other.words_[wlo] & HeadMask(lo)) != 0) return false;
      first_full = wlo + 1;
    }
    size_t last_full = whi;
    if ((hi & 63) != 0) {
      if ((words_[whi] & ~other.words_[whi] & TailMask(hi)) != 0) return false;
      last_full = whi - 1;
    }
    return first_full > last_full ||
           simd::Active().subset_words(&words_[first_full],
                                       &other.words_[first_full],
                                       last_full - first_full + 1);
  }

  Bitset& operator|=(const Bitset& other) {
    XPTC_DCHECK(size_ == other.size_);
    simd::Active().or_words(words_.data(), other.words_.data(), LiveWords());
    return *this;
  }
  Bitset& operator&=(const Bitset& other) {
    XPTC_DCHECK(size_ == other.size_);
    simd::Active().and_words(words_.data(), other.words_.data(), LiveWords());
    return *this;
  }
  Bitset& operator^=(const Bitset& other) {
    XPTC_DCHECK(size_ == other.size_);
    simd::Active().xor_words(words_.data(), other.words_.data(), LiveWords());
    return *this;
  }
  /// Removes all bits present in `other`.
  Bitset& Subtract(const Bitset& other) {
    XPTC_DCHECK(size_ == other.size_);
    simd::Active().andnot_words(words_.data(), other.words_.data(),
                                LiveWords());
    return *this;
  }
  /// Complements in place (within [0, size)).
  Bitset& Flip() {
    simd::Active().not_words(words_.data(), words_.data(), LiveWords());
    ClearPadding();
    return *this;
  }

  bool operator==(const Bitset& other) const {
    // Valid word-for-word because padding is always zero on both sides.
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  /// True if this set is a subset of `other` (early-exit, see
  /// IsSubsetOfRange).
  bool IsSubsetOf(const Bitset& other) const {
    XPTC_DCHECK(size_ == other.size_);
    return simd::Active().subset_words(words_.data(), other.words_.data(),
                                       LiveWords());
  }

  /// Materializes the set as a sorted index vector (batch-decoded).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(Count()));
    ForEachSetBitBatch(0, size_, [&](const int32_t* idx, int count) {
      out.insert(out.end(), idx, idx + count);
    });
    return out;
  }

 private:
  static size_t WordCount(int size) {
    return (static_cast<size_t>(size) + 63) / 64;
  }
  /// Live words rounded up to a whole number of 64-byte lines.
  static size_t PaddedWordCount(int size) {
    return (WordCount(size) + 7) & ~size_t{7};
  }
  size_t LiveWords() const { return WordCount(size_); }
  void CheckRange(int lo, int hi) const {
    XPTC_DCHECK(lo >= 0 && lo <= size_);
    XPTC_DCHECK(hi >= 0 && hi <= size_);
  }
  /// Mask selecting bits >= lo within lo's word.
  static uint64_t HeadMask(int lo) { return ~uint64_t{0} << (lo & 63); }
  /// Mask selecting bits < hi within (hi-1)'s word. Requires hi > 0.
  static uint64_t TailMask(int hi) {
    return ~uint64_t{0} >> (63 - ((hi - 1) & 63));
  }
  /// Invokes `op(word_index, mask)` for each word overlapping [lo, hi),
  /// where `mask` selects exactly the range's bits within that word.
  template <typename Op>
  void ForEachRangeWord(int lo, int hi, Op&& op) const {
    CheckRange(lo, hi);
    if (lo >= hi) return;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    if (wlo == whi) {
      op(wlo, HeadMask(lo) & TailMask(hi));
      return;
    }
    op(wlo, HeadMask(lo));
    for (size_t wi = wlo + 1; wi < whi; ++wi) op(wi, ~uint64_t{0});
    op(whi, TailMask(hi));
  }
  /// Like ForEachRangeWord, but splits the range into at most two masked
  /// partial words (`masked(word_index, mask)`) and one contiguous run of
  /// whole words (`run(first_word, word_count)`) so the run can go through
  /// a word-span kernel instead of a per-word lambda.
  template <typename MaskedOp, typename RunOp>
  void ForEachRangeRun(int lo, int hi, MaskedOp&& masked, RunOp&& run) const {
    CheckRange(lo, hi);
    if (lo >= hi) return;
    const size_t wlo = static_cast<size_t>(lo) >> 6;
    const size_t whi = static_cast<size_t>(hi - 1) >> 6;
    if (wlo == whi) {
      masked(wlo, HeadMask(lo) & TailMask(hi));
      return;
    }
    size_t first_full = wlo;
    if ((lo & 63) != 0) {
      masked(wlo, HeadMask(lo));
      first_full = wlo + 1;
    }
    size_t last_full = whi;
    if ((hi & 63) != 0) {
      masked(whi, TailMask(hi));
      last_full = whi - 1;
    }
    if (first_full <= last_full) run(first_full, last_full - first_full + 1);
  }
  /// Zeroes bits >= size in the last live word. Padding words past the
  /// live range are zero from construction and never written, so only the
  /// tail word can pick up stray bits (from SetAll / Flip).
  void ClearPadding() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_[LiveWords() - 1] &= (~uint64_t{0}) >> (64 - size_ % 64);
    }
  }

  int size_;
  std::vector<uint64_t, simd::AlignedAllocator<uint64_t, 64>> words_;
};

/// Square boolean matrix over node ids; the explicit binary-relation
/// representation used by the naive (reference) evaluator.
class BitMatrix {
 public:
  BitMatrix() : n_(0) {}
  explicit BitMatrix(int n) : n_(n), rows_(static_cast<size_t>(n), Bitset(n)) {}

  int n() const { return n_; }
  bool Get(int i, int j) const { return rows_[static_cast<size_t>(i)].Get(j); }
  void Set(int i, int j) { rows_[static_cast<size_t>(i)].Set(j); }
  const Bitset& Row(int i) const { return rows_[static_cast<size_t>(i)]; }
  Bitset& Row(int i) { return rows_[static_cast<size_t>(i)]; }

  /// Sets the identity relation bits.
  void SetDiagonal() {
    for (int i = 0; i < n_; ++i) rows_[static_cast<size_t>(i)].Set(i);
  }

  BitMatrix& operator|=(const BitMatrix& other) {
    XPTC_DCHECK(n_ == other.n_);
    for (int i = 0; i < n_; ++i) rows_[static_cast<size_t>(i)] |= other.Row(i);
    return *this;
  }

  /// Relational composition: result(i,k) iff ∃j. this(i,j) ∧ other(j,k).
  BitMatrix Compose(const BitMatrix& other) const {
    XPTC_DCHECK(n_ == other.n_);
    BitMatrix result(n_);
    for (int i = 0; i < n_; ++i) {
      const Bitset& row = Row(i);
      Bitset& out = result.Row(i);
      for (int j = row.FindFirst(); j >= 0; j = row.FindNext(j)) {
        out |= other.Row(j);
      }
    }
    return result;
  }

  /// Transitive closure (not reflexive) by iterated squaring over rows
  /// (Warshall on bitset rows).
  BitMatrix TransitiveClosure() const {
    BitMatrix result = *this;
    for (int k = 0; k < n_; ++k) {
      const Bitset via = result.Row(k);  // copy: row k may gain bits
      for (int i = 0; i < n_; ++i) {
        if (result.Get(i, k)) result.Row(i) |= via;
      }
    }
    return result;
  }

  /// Converse relation (transpose).
  BitMatrix Transpose() const {
    BitMatrix result(n_);
    for (int i = 0; i < n_; ++i) {
      const Bitset& row = Row(i);
      for (int j = row.FindFirst(); j >= 0; j = row.FindNext(j)) {
        result.Set(j, i);
      }
    }
    return result;
  }

  bool operator==(const BitMatrix& other) const {
    return n_ == other.n_ && rows_ == other.rows_;
  }
  bool operator!=(const BitMatrix& other) const { return !(*this == other); }

  /// Set of sources: {i : ∃j. (i,j)}.
  Bitset Domain() const {
    Bitset out(n_);
    for (int i = 0; i < n_; ++i) {
      if (rows_[static_cast<size_t>(i)].Any()) out.Set(i);
    }
    return out;
  }

  /// Set of targets: {j : ∃i. (i,j)}.
  Bitset Range() const {
    Bitset out(n_);
    for (int i = 0; i < n_; ++i) out |= rows_[static_cast<size_t>(i)];
    return out;
  }

 private:
  int n_;
  std::vector<Bitset> rows_;
};

}  // namespace xptc

#endif  // XPTC_COMMON_BITSET_H_
