#ifndef XPTC_COMMON_CHECK_H_
#define XPTC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace xptc {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the XPTC_CHECK macros; a failed check is a library bug,
/// never a recoverable condition (those use Status).
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct CheckVoidify {
  // Lowest-precedence operator so the macro can swallow the stream.
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace xptc

/// Aborts with a message if `condition` is false. Streams extra context:
///   XPTC_CHECK(a < b) << "a=" << a;
#define XPTC_CHECK(condition)                            \
  (condition) ? (void)0                                  \
              : ::xptc::internal::CheckVoidify() &       \
                    ::xptc::internal::CheckFailStream(   \
                        __FILE__, __LINE__, #condition)

#define XPTC_CHECK_EQ(a, b) XPTC_CHECK((a) == (b))
#define XPTC_CHECK_NE(a, b) XPTC_CHECK((a) != (b))
#define XPTC_CHECK_LT(a, b) XPTC_CHECK((a) < (b))
#define XPTC_CHECK_LE(a, b) XPTC_CHECK((a) <= (b))
#define XPTC_CHECK_GT(a, b) XPTC_CHECK((a) > (b))
#define XPTC_CHECK_GE(a, b) XPTC_CHECK((a) >= (b))

#ifdef NDEBUG
#define XPTC_DCHECK(condition) XPTC_CHECK(true || (condition))
#else
#define XPTC_DCHECK(condition) XPTC_CHECK(condition)
#endif

#endif  // XPTC_COMMON_CHECK_H_
