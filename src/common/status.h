#ifndef XPTC_COMMON_STATUS_H_
#define XPTC_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace xptc {

/// Error categories used across the library. The set is deliberately small:
/// callers almost always branch on ok() only, and the code is primarily
/// useful for tests and diagnostics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // malformed input (query text, XML, parameters)
  kNotSupported = 2,      // outside the fragment an algorithm is total on
  kOutOfRange = 3,        // index / id out of bounds
  kInternal = 4,          // invariant violation that is a library bug
};

/// Returns a stable human-readable name for a status code ("OK", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. The library does not use exceptions;
/// every fallible operation returns `Status` or `Result<T>`.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. `Status` is cheap to move and cheap to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotSupported(std::string message) {
    return Status(StatusCode::kNotSupported, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so that Status is copyable without reallocating the message;
  // error paths are cold.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. For use in functions returning
/// `Status` or `Result<T>`.
#define XPTC_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::xptc::Status _xptc_status = (expr);        \
    if (!_xptc_status.ok()) return _xptc_status; \
  } while (false)

}  // namespace xptc

#endif  // XPTC_COMMON_STATUS_H_
