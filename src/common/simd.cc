#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "obs/metrics.h"

// The XPTC_SIMD compile gate (CMake option of the same name): 0 strips the
// vector levels from the binary entirely — the generic table is all there
// is, and `XPTC_SIMD=avx2` in the environment is an error at dispatch.
#ifndef XPTC_SIMD
#define XPTC_SIMD 1
#endif

#if XPTC_SIMD && defined(__x86_64__) && defined(__GNUC__)
#define XPTC_SIMD_AVX2 1
#include <immintrin.h>
#else
#define XPTC_SIMD_AVX2 0
#endif

#if XPTC_SIMD && defined(__aarch64__)
#define XPTC_SIMD_NEON 1
#include <arm_neon.h>
#else
#define XPTC_SIMD_NEON 0
#endif

namespace xptc {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Generic level: portable word loops, the semantic reference for every
// vector level. Deliberately plain — whatever auto-vectorization the
// compiler applies at -O2 is part of the honest scalar baseline.

void OrWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= a[i];
}
void AndWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= a[i];
}
void AndNotWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~a[i];
}
void XorWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= a[i];
}
void CopyWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  // n == 0 may arrive with null pointers (empty sets); memmove's nonnull
  // contract makes that UB even for zero lengths.
  if (n != 0) std::memmove(dst, a, n * sizeof(uint64_t));
}
void NotWordsGeneric(uint64_t* dst, const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = ~a[i];
}
void AssignAndNotWordsGeneric(uint64_t* dst, const uint64_t* a,
                              const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}
void AssignOrNotWordsGeneric(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] | ~b[i];
}
int64_t PopcountWordsGeneric(const uint64_t* a, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += __builtin_popcountll(a[i]);
  return count;
}
bool AnyWordsGeneric(const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}
bool SubsetWordsGeneric(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
// Shared head/tail masks for the bit-ranged kernels. `RangeHeadMask(lo)`
// selects bits >= lo within lo's word; `RangeTailMask(hi)` selects bits
// < hi within (hi-1)'s word (requires hi > 0).
inline uint64_t RangeHeadMask(size_t lo) { return ~uint64_t{0} << (lo & 63); }
inline uint64_t RangeTailMask(size_t hi) {
  return ~uint64_t{0} >> (63 - ((hi - 1) & 63));
}

void FillRangeGeneric(uint64_t* words, size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    words[wlo] |= RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  words[wlo] |= RangeHeadMask(lo);
  for (size_t wi = wlo + 1; wi < whi; ++wi) words[wi] = ~uint64_t{0};
  words[whi] |= RangeTailMask(hi);
}

void OrRangeGeneric(uint64_t* dst, const uint64_t* src, size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    dst[wlo] |= src[wlo] & RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  dst[wlo] |= src[wlo] & RangeHeadMask(lo);
  for (size_t wi = wlo + 1; wi < whi; ++wi) dst[wi] |= src[wi];
  dst[whi] |= src[whi] & RangeTailMask(hi);
}

void GatherWordsGeneric(uint64_t* dst, const uint64_t* src, const int32_t* idx,
                        size_t n) {
  // Assemble each output word from 64 gathered bits. The bit extractions
  // are independent (no loop-carried dependency except the final OR tree),
  // so the scalar loop still streams: 64 in-order loads per output word
  // against the per-set-bit pointer chase it replaces.
  for (size_t w = 0; w < n; ++w) {
    const int32_t* ix = idx + w * 64;
    uint64_t out = 0;
    for (int b = 0; b < 64; ++b) {
      const uint32_t i = static_cast<uint32_t>(ix[b]);
      out |= ((src[i >> 6] >> (i & 63)) & uint64_t{1}) << b;
    }
    dst[w] = out;
  }
}

constexpr Kernels kGenericKernels = {
    Level::kGeneric,        OrWordsGeneric,       AndWordsGeneric,
    AndNotWordsGeneric,     XorWordsGeneric,      CopyWordsGeneric,
    NotWordsGeneric,        AssignAndNotWordsGeneric,
    AssignOrNotWordsGeneric, PopcountWordsGeneric, AnyWordsGeneric,
    SubsetWordsGeneric,     GatherWordsGeneric,   FillRangeGeneric,
    OrRangeGeneric,
};

// ---------------------------------------------------------------------------
// AVX2 level: 4 words per 256-bit op. Function-level target("avx2") keeps
// the rest of the binary baseline-x86_64; the tail (< 4 words) runs the
// scalar epilogue. Popcount stays scalar — AVX2 has no vector popcount,
// and the hardware popcnt the builtin emits already does a word per cycle.

#if XPTC_SIMD_AVX2

#define XPTC_AVX2 __attribute__((target("avx2")))

XPTC_AVX2 void OrWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(x, y));
  }
  for (; i < n; ++i) dst[i] |= a[i];
}

XPTC_AVX2 void AndWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(x, y));
  }
  for (; i < n; ++i) dst[i] &= a[i];
}

XPTC_AVX2 void AndNotWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // andnot(y, x) = ~y & x = x & ~y.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(y, x));
  }
  for (; i < n; ++i) dst[i] &= ~a[i];
}

XPTC_AVX2 void XorWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(x, y));
  }
  for (; i < n; ++i) dst[i] ^= a[i];
}

XPTC_AVX2 void CopyWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
  }
  for (; i < n; ++i) dst[i] = a[i];
}

XPTC_AVX2 void NotWordsAvx2(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= n; i += 4) {
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(y, ones));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}

XPTC_AVX2 void AssignAndNotWordsAvx2(uint64_t* dst, const uint64_t* a,
                                     const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(y, x));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

XPTC_AVX2 void AssignOrNotWordsAvx2(uint64_t* dst, const uint64_t* a,
                                    const uint64_t* b, size_t n) {
  size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(x, _mm256_xor_si256(y, ones)));
  }
  for (; i < n; ++i) dst[i] = a[i] | ~b[i];
}

XPTC_AVX2 bool AnyWordsAvx2(const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(y, y)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

XPTC_AVX2 bool SubsetWordsAvx2(const uint64_t* a, const uint64_t* b,
                               size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(y, x) == 1  iff  (~y & x) == 0  iff  a-block ⊆ b-block.
    if (!_mm256_testc_si256(y, x)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

XPTC_AVX2 void GatherWordsAvx2(uint64_t* dst, const uint64_t* src,
                               const int32_t* idx, size_t n) {
  // Hardware gather at 32-bit granularity: each lane fetches the 32-bit
  // half-word holding its bit (word index = idx >> 5), shifts its bit to
  // position 0, then to the sign position so movemask packs 8 lanes into
  // 8 output bits. 8 gathers assemble one 64-bit output word.
  const int* src32 = reinterpret_cast<const int*>(src);
  const __m256i low5 = _mm256_set1_epi32(31);
  for (size_t w = 0; w < n; ++w) {
    const int32_t* ix = idx + w * 64;
    uint64_t out = 0;
    for (int g = 0; g < 8; ++g) {
      const __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ix + g * 8));
      const __m256i half_idx = _mm256_srli_epi32(vidx, 5);
      const __m256i bit_idx = _mm256_and_si256(vidx, low5);
      const __m256i halves = _mm256_i32gather_epi32(src32, half_idx, 4);
      const __m256i bits = _mm256_srlv_epi32(halves, bit_idx);
      const int mask = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_slli_epi32(bits, 31)));
      out |= static_cast<uint64_t>(static_cast<uint32_t>(mask) & 0xffu)
             << (g * 8);
    }
    dst[w] = out;
  }
}

XPTC_AVX2 void FillRangeAvx2(uint64_t* words, size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    words[wlo] |= RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  words[wlo] |= RangeHeadMask(lo);
  size_t wi = wlo + 1;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; wi + 4 <= whi; wi += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + wi), ones);
  }
  for (; wi < whi; ++wi) words[wi] = ~uint64_t{0};
  words[whi] |= RangeTailMask(hi);
}

XPTC_AVX2 void OrRangeAvx2(uint64_t* dst, const uint64_t* src, size_t lo,
                           size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    dst[wlo] |= src[wlo] & RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  dst[wlo] |= src[wlo] & RangeHeadMask(lo);
  size_t wi = wlo + 1;
  for (; wi + 4 <= whi; wi += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + wi));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + wi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + wi),
                        _mm256_or_si256(x, y));
  }
  for (; wi < whi; ++wi) dst[wi] |= src[wi];
  dst[whi] |= src[whi] & RangeTailMask(hi);
}

#undef XPTC_AVX2

constexpr Kernels kAvx2Kernels = {
    Level::kAvx2,         OrWordsAvx2,        AndWordsAvx2,
    AndNotWordsAvx2,      XorWordsAvx2,       CopyWordsAvx2,
    NotWordsAvx2,         AssignAndNotWordsAvx2,
    AssignOrNotWordsAvx2, PopcountWordsGeneric, AnyWordsAvx2,
    SubsetWordsAvx2,      GatherWordsAvx2,    FillRangeAvx2,
    OrRangeAvx2,
};

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // XPTC_SIMD_AVX2

// ---------------------------------------------------------------------------
// NEON level: 2 words per 128-bit op. NEON is architecturally baseline on
// aarch64, so there is no runtime CPU probe — compiled in means available.

#if XPTC_SIMD_NEON

void OrWordsNeon(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] |= a[i];
}
void AndWordsNeon(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] &= a[i];
}
void AndNotWordsNeon(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // bic(x, y) = x & ~y.
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] &= ~a[i];
}
void XorWordsNeon(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  }
  for (; i < n; ++i) dst[i] ^= a[i];
}
void NotWordsNeon(uint64_t* dst, const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vreinterpretq_u64_u8(
                           vmvnq_u8(vreinterpretq_u8_u64(vld1q_u64(a + i)))));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}
void AssignAndNotWordsNeon(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                           size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}
void AssignOrNotWordsNeon(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                          size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // orn(x, y) = x | ~y.
    vst1q_u64(dst + i, vornq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | ~b[i];
}
bool AnyWordsNeon(const uint64_t* a, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t y = vld1q_u64(a + i);
    if ((vgetq_lane_u64(y, 0) | vgetq_lane_u64(y, 1)) != 0) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}
bool SubsetWordsNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t extra = vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(extra, 0) | vgetq_lane_u64(extra, 1)) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void FillRangeNeon(uint64_t* words, size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    words[wlo] |= RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  words[wlo] |= RangeHeadMask(lo);
  size_t wi = wlo + 1;
  const uint64x2_t ones = vdupq_n_u64(~uint64_t{0});
  for (; wi + 2 <= whi; wi += 2) vst1q_u64(words + wi, ones);
  for (; wi < whi; ++wi) words[wi] = ~uint64_t{0};
  words[whi] |= RangeTailMask(hi);
}

void OrRangeNeon(uint64_t* dst, const uint64_t* src, size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t wlo = lo >> 6;
  const size_t whi = (hi - 1) >> 6;
  if (wlo == whi) {
    dst[wlo] |= src[wlo] & RangeHeadMask(lo) & RangeTailMask(hi);
    return;
  }
  dst[wlo] |= src[wlo] & RangeHeadMask(lo);
  size_t wi = wlo + 1;
  for (; wi + 2 <= whi; wi += 2) {
    vst1q_u64(dst + wi, vorrq_u64(vld1q_u64(dst + wi), vld1q_u64(src + wi)));
  }
  for (; wi < whi; ++wi) dst[wi] |= src[wi];
  dst[whi] |= src[whi] & RangeTailMask(hi);
}

constexpr Kernels kNeonKernels = {
    Level::kNeon,         OrWordsNeon,        AndWordsNeon,
    AndNotWordsNeon,      XorWordsNeon,       CopyWordsGeneric,
    NotWordsNeon,         AssignAndNotWordsNeon,
    AssignOrNotWordsNeon, PopcountWordsGeneric, AnyWordsNeon,
    SubsetWordsNeon,      GatherWordsGeneric,  // NEON has no gather
    FillRangeNeon,        OrRangeNeon,
};

#endif  // XPTC_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.

obs::Gauge& LevelGauge() {
  static obs::Gauge* gauge = &obs::Registry::Default().gauge("simd.level");
  return *gauge;
}

const Kernels* Detect() {
  const char* env = std::getenv("XPTC_SIMD");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "generic") == 0) return &kGenericKernels;
#if XPTC_SIMD_AVX2
    if (std::strcmp(env, "avx2") == 0) {
      XPTC_CHECK(CpuHasAvx2()) << "XPTC_SIMD=avx2 but the CPU lacks AVX2";
      return &kAvx2Kernels;
    }
#endif
#if XPTC_SIMD_NEON
    if (std::strcmp(env, "neon") == 0) return &kNeonKernels;
#endif
    XPTC_CHECK(false) << "unsupported XPTC_SIMD level '" << env
                      << "' (compiled out, or unknown; valid here: auto, "
                         "generic"
#if XPTC_SIMD_AVX2
                         ", avx2"
#endif
#if XPTC_SIMD_NEON
                         ", neon"
#endif
                         ")";
  }
#if XPTC_SIMD_AVX2
  if (CpuHasAvx2()) return &kAvx2Kernels;
#endif
#if XPTC_SIMD_NEON
  return &kNeonKernels;
#endif
  return &kGenericKernels;
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kGeneric:
      return "generic";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Detect();
    const Kernels* expected = nullptr;
    // First caller wins; a racing caller's Detect() returns the same table
    // (detection is deterministic within one process environment).
    if (g_active.compare_exchange_strong(expected, table,
                                         std::memory_order_acq_rel)) {
      LevelGauge().Set(static_cast<int64_t>(table->level));
    } else {
      table = expected;
    }
  }
  return *table;
}

Level ActiveLevel() { return Active().level; }

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kGeneric:
      return true;
    case Level::kAvx2:
#if XPTC_SIMD_AVX2
      return CpuHasAvx2();
#else
      return false;
#endif
    case Level::kNeon:
#if XPTC_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Kernels& KernelsFor(Level level) {
  XPTC_CHECK(LevelAvailable(level))
      << "simd level " << LevelName(level) << " unavailable";
  switch (level) {
    case Level::kGeneric:
      return kGenericKernels;
    case Level::kAvx2:
#if XPTC_SIMD_AVX2
      return kAvx2Kernels;
#else
      break;
#endif
    case Level::kNeon:
#if XPTC_SIMD_NEON
      return kNeonKernels;
#else
      break;
#endif
  }
  return kGenericKernels;
}

void SetLevelForTesting(Level level) {
  const Kernels& table = KernelsFor(level);
  g_active.store(&table, std::memory_order_release);
  LevelGauge().Set(static_cast<int64_t>(level));
}

void ResetLevelForTesting() {
  const Kernels* table = Detect();
  g_active.store(table, std::memory_order_release);
  LevelGauge().Set(static_cast<int64_t>(table->level));
}

}  // namespace simd
}  // namespace xptc
