#ifndef XPTC_COMMON_ALPHABET_H_
#define XPTC_COMMON_ALPHABET_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace xptc {

/// Interned label identifier. Labels (XML element names / propositional
/// letters) are interned once per `Alphabet` and referenced by dense ids,
/// so trees and expressions compare labels by integer.
using Symbol = int32_t;

inline constexpr Symbol kInvalidSymbol = -1;

/// String interner shared by trees, queries, formulas and automata that talk
/// about the same documents. Append-only; symbols are dense [0, size).
class Alphabet {
 public:
  Alphabet() = default;

  // Alphabets are identity objects shared by pointer; copying one would
  // silently decouple symbol spaces.
  Alphabet(const Alphabet&) = delete;
  Alphabet& operator=(const Alphabet&) = delete;

  /// Returns the symbol for `name`, interning it if new.
  Symbol Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    const Symbol symbol = static_cast<Symbol>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), symbol);
    return symbol;
  }

  /// Returns the symbol for `name` or kInvalidSymbol if never interned.
  Symbol Find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? kInvalidSymbol : it->second;
  }

  /// Name of an interned symbol.
  const std::string& Name(Symbol symbol) const {
    XPTC_CHECK_GE(symbol, 0);
    XPTC_CHECK_LT(static_cast<size_t>(symbol), names_.size());
    return names_[static_cast<size_t>(symbol)];
  }

  /// Number of interned symbols.
  int size() const { return static_cast<int>(names_.size()); }

  bool Contains(Symbol symbol) const {
    return symbol >= 0 && static_cast<size_t>(symbol) < names_.size();
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> index_;
};

}  // namespace xptc

#endif  // XPTC_COMMON_ALPHABET_H_
