#ifndef XPTC_COMMON_THREADPOOL_H_
#define XPTC_COMMON_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace xptc {

/// Fixed-size work-stealing thread pool — the execution substrate of the
/// workload layer (`src/workload/`).
///
/// Design: one task deque per worker, guarded by its own mutex. `Submit`
/// distributes tasks round-robin; a worker pops from the *back* of its own
/// deque (most recently pushed — cache-warm) and, when its deque is empty,
/// steals from the *front* of a victim's deque (oldest task — the one the
/// owner would reach last). A small global mutex/condvar pair tracks only
/// two counters (tasks queued, tasks not yet finished) so idle workers can
/// sleep and `Wait` can block without polling.
///
/// Tasks receive the executing worker's id in [0, num_workers()), which
/// lets callers keep lock-free per-worker state (e.g. the per-worker
/// `EvalScratch` pools of `BatchEngine`): a worker id is only ever active
/// on one OS thread at a time.
///
/// All synchronisation is plain mutex/condvar (the only atomic is the
/// round-robin submit cursor), so the pool is straightforward to reason
/// about and clean under TSan. Task granularity in this library is a full
/// (tree, query) evaluation, so per-task locking cost is noise.
class ThreadPool {
 public:
  /// A unit of work; invoked with the executing worker's id.
  using Task = std::function<void(int)>;

  /// `num_workers <= 0` selects `DefaultWorkers()`.
  explicit ThreadPool(int num_workers = 0) {
    if (num_workers <= 0) num_workers = DefaultWorkers();
    queues_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      queues_.push_back(std::make_unique<WorkerQueue>());
    }
    threads_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
    collector_ = obs::Registry::Default().AddCollector(
        [this](obs::Snapshot* snap) {
          snap->AddCounter("threadpool.tasks_executed", executed_.value());
          snap->AddCounter("threadpool.steals", steals_.value());
        });
  }

  /// Drains all remaining tasks, then joins the workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Hardware concurrency, clamped to at least 1.
  static int DefaultWorkers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// Enqueues a task. Never blocks; tasks may run before Submit returns.
  void Submit(Task task) {
    XPTC_CHECK(task != nullptr);
    const size_t qi =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    // Count the task BEFORE publishing it. The other order is unsound: a
    // worker still holding an entitlement from an earlier submission could
    // steal and finish the not-yet-counted task, driving pending_ to 0
    // while counted tasks still sit in deques — a concurrent Wait() would
    // then return before its own tasks ran. Counting first only errs the
    // safe way (a claim may briefly precede the push; TakeTask's retry
    // loop tolerates that, see below).
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++queued_;
      ++pending_;
    }
    {
      std::lock_guard<std::mutex> lock(queues_[qi]->mu);
      queues_[qi]->tasks.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until every submitted task has finished (including tasks
  /// submitted by other threads — the pool tracks one global count).
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Runs `fn(i, worker_id)` for every i in [0, n) across the pool, then
  /// blocks until all n invocations finished.
  void ParallelFor(int n, const std::function<void(int, int)>& fn) {
    for (int i = 0; i < n; ++i) {
      Submit([i, &fn](int worker) { fn(i, worker); });
    }
    Wait();
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int id) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
        if (queued_ == 0) return;  // stop_ set and nothing left to drain
        // Claim an entitlement to exactly one queued task. Each counted
        // task is pushed into a deque shortly after being counted and
        // tasks are only removed by workers holding an entitlement, so a
        // claim is matched by a task that is either already in a deque or
        // about to land there — TakeTask retries until it appears.
        --queued_;
      }
      Task task = TakeTask(id);
      task(id);
      executed_.Inc();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
        if (pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  /// Pops the caller's own deque (LIFO), else steals round-robin (FIFO).
  /// Only called with an entitlement, so it always finds a task.
  Task TakeTask(int id) {
    const int n = static_cast<int>(queues_.size());
    for (;;) {
      for (int k = 0; k < n; ++k) {
        WorkerQueue& q = *queues_[static_cast<size_t>((id + k) % n)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.tasks.empty()) continue;
        Task task;
        if (k == 0) {
          task = std::move(q.tasks.back());
          q.tasks.pop_back();
        } else {
          task = std::move(q.tasks.front());
          q.tasks.pop_front();
          steals_.Inc();
        }
        return task;
      }
      // Racing another claimant, or the push matching this claim has not
      // landed yet (Submit counts before publishing); retry.
      std::this_thread::yield();
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> next_queue_{0};  // round-robin submit cursor

  std::mutex mu_;  // guards queued_, pending_, stop_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  int queued_ = 0;   // tasks counted by Submit, not yet claimed (the push
                     // into a deque may trail the count by an instant)
  int pending_ = 0;  // tasks submitted, not yet finished
  bool stop_ = false;

  // Per-instance obs counters, summed into `threadpool.*` registry names
  // by the collector. The handle is the last member: it unregisters before
  // the counters (or anything else) is destroyed, and worker threads are
  // joined in the destructor body before any member goes away.
  obs::Counter executed_;
  obs::Counter steals_;
  obs::Registry::CollectorHandle collector_;
};

}  // namespace xptc

#endif  // XPTC_COMMON_THREADPOOL_H_
