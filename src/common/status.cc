#include "common/status.h"

namespace xptc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace xptc
