#ifndef XPTC_COMMON_RESULT_H_
#define XPTC_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace xptc {

/// Value-or-error, in the style of arrow::Result. A `Result<T>` holds either
/// a `T` or a non-OK `Status`; accessing the value of an error result aborts
/// (library bug), so callers must test `ok()` or use the macros below.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common, successful path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    XPTC_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  const T& ValueOrDie() const& {
    XPTC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    XPTC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    XPTC_CHECK(ok()) << "ValueOrDie on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, or returns its
/// status from the enclosing function.
#define XPTC_ASSIGN_OR_RETURN(lhs, expr)                        \
  XPTC_ASSIGN_OR_RETURN_IMPL(                                   \
      XPTC_CONCAT_NAMES(_xptc_result_, __LINE__), lhs, expr)

#define XPTC_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                               \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

#define XPTC_CONCAT_NAMES_INNER(x, y) x##y
#define XPTC_CONCAT_NAMES(x, y) XPTC_CONCAT_NAMES_INNER(x, y)

}  // namespace xptc

#endif  // XPTC_COMMON_RESULT_H_
