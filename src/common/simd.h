#ifndef XPTC_COMMON_SIMD_H_
#define XPTC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <new>

namespace xptc {
namespace simd {

/// The word-kernel dispatch shim: every bulk boolean loop of the engine
/// (bitset ranged ops, the downward sweep's child-aggregate OR) funnels
/// through one table of kernels over raw `uint64_t` word spans, selected
/// once at runtime.
///
/// Levels:
///  - kGeneric — portable word-at-a-time loops, always available. This is
///    the semantic reference: every other level must be bit-identical
///    (tests/simd_kernels_test.cc enforces it on random inputs).
///  - kAvx2   — 4 words per vector op, compiled as target("avx2")
///    functions (the translation unit itself is built without -mavx2, so
///    the binary still runs on non-AVX2 hosts) and selected only when
///    `__builtin_cpu_supports("avx2")` says so.
///  - kNeon   — 2 words per vector op on aarch64, where NEON is baseline.
///
/// Selection: the `XPTC_SIMD` CMake option compiles the vector levels in
/// or out entirely; at runtime the `XPTC_SIMD` environment variable
/// (`auto` | `generic` | `avx2` | `neon`) overrides CPU detection —
/// `XPTC_SIMD=generic ./bench` is how the scalar baseline is measured on
/// an AVX2 host. The active level is published as the `simd.level` gauge
/// (0 = generic, 1 = avx2, 2 = neon).
enum class Level : int {
  kGeneric = 0,
  kAvx2 = 1,
  kNeon = 2,
};

const char* LevelName(Level level);

/// One dispatch table. All kernels operate on `n` whole 64-bit words;
/// spans must not overlap (except dst == a / dst == b aliasing, which
/// every kernel tolerates because it reads each word before writing it).
/// Sub-word masking is the caller's job (Bitset splits ranges into masked
/// head/tail words and a whole-word middle run).
struct Kernels {
  Level level;

  // In-place binary: dst[i] = dst[i] OP a[i].
  void (*or_words)(uint64_t* dst, const uint64_t* a, size_t n);
  void (*and_words)(uint64_t* dst, const uint64_t* a, size_t n);
  void (*andnot_words)(uint64_t* dst, const uint64_t* a, size_t n);  // dst &= ~a
  void (*xor_words)(uint64_t* dst, const uint64_t* a, size_t n);

  // Unary assign: dst[i] = f(a[i]).
  void (*copy_words)(uint64_t* dst, const uint64_t* a, size_t n);
  void (*not_words)(uint64_t* dst, const uint64_t* a, size_t n);  // dst = ~a

  // Fused three-operand assign: dst[i] = a[i] OP b[i]. One pass where the
  // unfused bytecode forms (copy + in-place op) take two.
  void (*assign_andnot_words)(uint64_t* dst, const uint64_t* a,
                              const uint64_t* b, size_t n);  // dst = a & ~b
  void (*assign_ornot_words)(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t n);  // dst = a | ~b

  // Reductions. `any` and `subset` exit at the first deciding block, so a
  // failing subset check costs O(first differing word), not O(n).
  int64_t (*popcount_words)(const uint64_t* a, size_t n);
  bool (*any_words)(const uint64_t* a, size_t n);
  bool (*subset_words)(const uint64_t* a, const uint64_t* b,
                       size_t n);  // (a & ~b) == 0 everywhere
  // Bit gather: dst[w] bit b = src bit idx[64*w + b], for n output words
  // (so idx has 64*n entries, each a valid non-negative bit index into
  // src). The streaming axis kernels run this with idx pointing straight
  // into a tree's preorder `parent_` column — child-image as one
  // sequential pass. AVX2 uses hardware 32-bit gathers on the word halves;
  // NEON has no gather and aliases the generic loop.
  void (*gather_words)(uint64_t* dst, const uint64_t* src, const int32_t* idx,
                       size_t n);

  // Ranged kernels over *bit* positions: unlike the word kernels above,
  // these take a [lo, hi) bit range and handle the masked head/tail words
  // internally, so callers (Bitset::SetRange/OrRange, the interval axis
  // kernels' per-subtree range fills) pay no mask bookkeeping per call.
  // `fill_range` sets every bit of words[lo, hi); `or_range` does
  // dst[lo, hi) |= src[lo, hi). Bits outside the range are untouched.
  // Requires lo <= hi; lo == hi is a no-op.
  void (*fill_range)(uint64_t* words, size_t lo, size_t hi);
  void (*or_range)(uint64_t* dst, const uint64_t* src, size_t lo, size_t hi);
};

/// The active dispatch table (detection + env override, cached after the
/// first call; also sets the `simd.level` gauge). Hot paths may cache the
/// reference — the table is immutable and has static storage duration.
const Kernels& Active();

Level ActiveLevel();

/// True iff `level` was compiled in and the CPU supports it.
bool LevelAvailable(Level level);

/// The table for a specific available level (CHECK-fails otherwise);
/// `kGeneric` is always available.
const Kernels& KernelsFor(Level level);

/// Forces the active level — the scalar-vs-SIMD equivalence tests and the
/// kernel microbenches switch levels mid-process with this. Requires
/// `LevelAvailable(level)`. Not thread-safe against concurrent kernel
/// users; call from single-threaded setup only.
void SetLevelForTesting(Level level);

/// Reverts `SetLevelForTesting` to detection + env override.
void ResetLevelForTesting();

/// STL allocator returning `Alignment`-byte aligned storage. `Bitset`
/// word vectors use 64 bytes — one cache line, and enough for any vector
/// extension the shim dispatches to — so kernel loads never straddle
/// lines needlessly.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

}  // namespace simd
}  // namespace xptc

#endif  // XPTC_COMMON_SIMD_H_
