#ifndef XPTC_OBS_EXPLAIN_H_
#define XPTC_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace xptc {
namespace obs {

/// What `tools/xptc_explain` runs: one query, one document, the full
/// pipeline (PlanCache parse + lowering, hybrid compiled execution,
/// interpreter cross-check), all under an active `QueryTrace`.
struct ExplainOptions {
  std::string query;

  /// Document: an XML string, or (when empty) a generated tree.
  std::string xml;
  int gen_nodes = 64;
  std::string gen_shape = "uniform";  // TreeShapeToString name
  uint64_t gen_seed = 1;
  int gen_labels = 4;

  /// Include timings (elapsed_ns span fields, *_ns counters, histograms).
  /// Off by default so the rendered dump is deterministic — the golden
  /// test and the registry-consistency check depend on that.
  bool with_times = false;

  /// Render the machine-readable JSON object instead of the text dump.
  bool json = false;
};

struct ExplainOutput {
  /// What the CLI prints: annotated text dump, or one JSON object when
  /// `options.json` is set.
  std::string rendered;

  /// Always-populated machine views (deterministic: no timings):
  std::string trace_json;     // the QueryTrace tree
  std::string registry_json;  // this query's registry delta (counters)

  /// True iff every number the trace reports (star rounds, instruction
  /// executions, dispatch decision, cache provenance) matches the
  /// registry's delta bit for bit.
  bool consistent = false;

  /// True iff the compiled engine and the interpreter cross-check agreed
  /// bit for bit on the selected set.
  bool match = false;
};

/// Evaluates `options.query` with full tracing and renders the EXPLAIN
/// dump. Errors: bad query/XML/shape, or a query outside Regular XPath(W).
Result<ExplainOutput> ExplainQuery(const ExplainOptions& options);

}  // namespace obs
}  // namespace xptc

#endif  // XPTC_OBS_EXPLAIN_H_
