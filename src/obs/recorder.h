#ifndef XPTC_OBS_RECORDER_H_
#define XPTC_OBS_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace xptc {
namespace obs {

/// The serving-path flight recorder (see DESIGN.md §16): request ids
/// minted at admission and carried on both wire protocols, per-request
/// phase attribution stitched across the reactor thread, the worker
/// thread, and the batch pool's fan-out, deterministic 1-in-N sampling
/// that is cheap enough to leave on in production, a bounded slow-query
/// log (/debug/slow, /debug/trace/<id>), and always-on
/// `server.phase.*_ns` histograms so tail attribution is answerable from
/// /metrics alone.

/// The serving phases of one request, in wire order. `kQueue` is
/// admission→worker-pop; `kExec` is QueryService::Handle; `kFlush` is
/// response-bytes-queued→last-byte-written-to-the-socket.
enum class Phase : int {
  kAccept = 0,  // bytes readable → parse start
  kParse = 1,   // parse + translate of the complete message
  kQueue = 2,   // admission push → worker pop (includes frozen workers)
  kExec = 3,    // QueryService::Handle
  kEncode = 4,  // response rendering (HTTP or frame)
  kFlush = 5,   // response queued on the connection → flushed to the socket
};
inline constexpr int kNumPhases = 6;
const char* PhaseName(Phase phase);

/// One batch-pool task's contribution to a request: which (tree, query)
/// cell ran, on which pool worker, when, for how long. The merged span
/// list of a request accounts for every cell of its fan-out exactly once.
struct WorkerSpan {
  int worker = 0;       // batch-pool worker id (or server worker id)
  int tree_id = 0;
  int query_index = 0;
  int64_t start_ns = 0;    // obs::NowNs clock
  int64_t elapsed_ns = 0;
};

/// Everything the recorder keeps about one request. Built by the server
/// for sampled requests (and for all requests while a completion log is
/// installed), finalised when the last response byte reaches the socket.
struct RequestTrace {
  uint64_t id = 0;              // flight id (minted or client-supplied)
  uint32_t wire_request_id = 0; // binary-protocol correlation id
  bool sampled = false;
  bool is_http = false;
  std::string op;     // "query", "batch", "explain"
  std::string peer;   // "ip:port" of the client socket
  std::string query;  // first query text, truncated for bounded memory
  uint8_t code = 0;   // RespCode of the response
  int64_t start_ns = 0;  // first byte seen (obs::NowNs clock)
  int64_t total_ns = 0;  // start → last response byte flushed
  int64_t phase_ns[kNumPhases] = {0, 0, 0, 0, 0, 0};
  std::vector<WorkerSpan> spans;    // batch fan-out (empty on fast paths)
  std::vector<std::string> notes;   // dispatch decisions, deadline events
};

/// 16-digit lowercase hex, the wire spelling of a flight id.
std::string FormatFlightId(uint64_t id);
/// Strict inverse: 1–16 hex digits, nothing else. False on anything else.
bool ParseFlightId(const std::string& text, uint64_t* out);
/// Wire-tolerant id derivation: a strict hex id parses verbatim; any
/// other non-empty value hashes to a stable nonzero id (so arbitrary
/// client X-Request-Id strings still correlate); empty returns 0.
uint64_t DeriveFlightId(const std::string& text);

/// One-line JSON object for a trace (the /debug and structured-log form).
std::string RequestTraceJson(const RequestTrace& trace);
/// Indented text rendering (the EXPLAIN request-trace section).
std::string RequestTraceText(const RequestTrace& trace);

class FlightRecorder {
 public:
  static FlightRecorder& Get();

  /// A fresh nonzero flight id (splitmix64 over a process counter).
  uint64_t MintId();

  /// Deterministic 1-in-N sampling by id hash: stable for a given id, so
  /// retries and cross-service hops sample together. n == 0 disables.
  bool Sampled(uint64_t id) const;
  void SetSampleEveryN(uint32_t n) {
    sample_n_.store(n, std::memory_order_relaxed);
  }
  uint32_t sample_every_n() const {
    return sample_n_.load(std::memory_order_relaxed);
  }

  /// Always-on phase attribution (`server.phase.*_ns` histograms), paid
  /// by every request whether or not it is sampled.
  void ObservePhase(Phase phase, int64_t ns);

  /// Finalises a completed trace: sampled traces enter the slow log
  /// (top-K by total_ns) and the recent ring (/debug/trace lookups); the
  /// completion log, when installed, sees every trace.
  void Record(RequestTrace trace);

  /// The /debug/slow body: sampling config + top-K traces, slowest first.
  std::string SlowJson() const;
  /// /debug/trace/<id>: checks the slow log, then the recent ring.
  bool Lookup(uint64_t id, RequestTrace* out) const;

  /// Structured logging hook (`xptc_serve --log-format=json`, tests).
  /// While installed, the server builds a trace for *every* request, so
  /// the callback sees unsampled traffic too. Called on the reactor
  /// thread — keep it cheap or queue internally.
  void SetCompletionLog(std::function<void(const RequestTrace&)> log);
  bool completion_log_installed() const {
    return log_installed_.load(std::memory_order_acquire);
  }

  /// Drops the slow log and the recent ring (tests and benches).
  void Reset();

  static constexpr size_t kSlowLogSize = 64;
  static constexpr size_t kRecentSize = 256;

 private:
  FlightRecorder();

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint32_t> sample_n_{0};
  std::atomic<bool> log_installed_{false};

  mutable std::mutex mu_;  // slow log + recent ring + completion log
  std::vector<RequestTrace> slow_;    // unsorted top-K; min evicted
  std::vector<RequestTrace> recent_;  // ring, kRecentSize slots
  size_t recent_next_ = 0;
  std::function<void(const RequestTrace&)> log_;
};

/// Per-pool-worker span buffers for one request's BatchEngine fan-out:
/// each worker appends to its own vector with no synchronisation (the
/// ParallelFor worker id is the index), and the caller merges after the
/// pool barrier. This is what lifts trace.h's one-thread `QueryTrace`
/// limitation for the serving path.
class BatchTraceSink {
 public:
  BatchTraceSink(uint64_t request_id, int num_workers)
      : request_id_(request_id),
        per_worker_(static_cast<size_t>(num_workers)) {}

  uint64_t request_id() const { return request_id_; }
  void Add(int worker, const WorkerSpan& span) {
    per_worker_[static_cast<size_t>(worker)].push_back(span);
  }
  /// Appends every worker's spans to `out` (call after the pool barrier).
  void MergeInto(std::vector<WorkerSpan>* out) const {
    for (const auto& row : per_worker_) {
      out->insert(out->end(), row.begin(), row.end());
    }
  }

 private:
  uint64_t request_id_;
  std::vector<std::vector<WorkerSpan>> per_worker_;
};

/// The worker thread's active RequestTrace, visible to the service layer
/// (exec attribution, batch-sink creation) without widening signatures.
/// nullptr when the request is not being traced.
class ScopedRequestTrace {
 public:
  explicit ScopedRequestTrace(RequestTrace* trace);
  ~ScopedRequestTrace();
  ScopedRequestTrace(const ScopedRequestTrace&) = delete;
  ScopedRequestTrace& operator=(const ScopedRequestTrace&) = delete;

 private:
  RequestTrace* saved_;
};
RequestTrace* CurrentRequestTrace();

}  // namespace obs
}  // namespace xptc

#endif  // XPTC_OBS_RECORDER_H_
