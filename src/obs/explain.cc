#include "obs/explain.h"

#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/engine.h"
#include "exec/program.h"
#include "exec/superopt.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tree/generate.h"
#include "tree/xml.h"
#include "workload/plan_cache.h"
#include "workload/tree_cache.h"
#include "xpath/ast.h"
#include "xpath/fragment.h"

namespace xptc {
namespace obs {

namespace {

Result<TreeShape> ShapeFromString(const std::string& name) {
  static constexpr TreeShape kShapes[] = {
      TreeShape::kUniformRecursive, TreeShape::kChain,
      TreeShape::kStar,             TreeShape::kFullBinary,
      TreeShape::kFullKAry,         TreeShape::kComb,
      TreeShape::kCaterpillar};
  for (TreeShape shape : kShapes) {
    if (name == TreeShapeToString(shape)) return shape;
  }
  std::string valid;
  for (TreeShape shape : kShapes) {
    if (!valid.empty()) valid += ", ";
    valid += TreeShapeToString(shape);
  }
  return Status::InvalidArgument("unknown tree shape '" + name +
                                 "' (valid: " + valid + ")");
}

/// Sums attribute `key` over the whole trace tree (instrumentation sites
/// attach counts to whichever span was current, so the registry-level total
/// is the sum over all nodes).
int64_t SumAttr(const TraceNode& node, const std::string& key) {
  int64_t total = 0;
  if (const int64_t* v = node.FindAttr(key)) total += *v;
  for (const auto& child : node.children) total += SumAttr(*child, key);
  return total;
}

/// Counts exact-match notes over the whole trace tree (cache provenance
/// notes must reconcile with the registry's hit/miss counters).
int64_t CountNotes(const TraceNode& node, const std::string& note) {
  int64_t total = 0;
  for (const std::string& n : node.notes) {
    if (n == note) ++total;
  }
  for (const auto& child : node.children) total += CountNotes(*child, note);
  return total;
}

int64_t DeltaCounter(const Snapshot& delta, const std::string& name) {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

/// The trace and the registry observe the same events through different
/// channels (trace: per-span attrs and notes, only when a trace is active;
/// registry: process-wide counters, always). Explain runs single-threaded
/// with everything under one trace, so every shared observable must agree
/// bit for bit — any drift means an instrumentation site updated one
/// channel and not the other.
bool TraceMatchesRegistry(const TraceNode& root, const Snapshot& delta,
                          std::vector<std::string>* mismatches) {
  struct Pair {
    const char* counter;     // registry name
    const char* trace_attr;  // summed trace attribute; nullptr → note
    const char* trace_note;  // counted exact note; nullptr → attr
  };
  static constexpr Pair kPairs[] = {
      {"exec.star_rounds", "star_rounds_used", nullptr},
      {"exec.instrs_executed", "instrs_executed", nullptr},
      {"eval.star_rounds", "star_rounds", nullptr},
      {"eval.within_l1_hits", "w.l1_hits", nullptr},
      {"eval.within_l2_hits", "w.l2_hits", nullptr},
      {"eval.within_computed", "w.computed", nullptr},
      {"plan_cache.hits", nullptr, "plan_cache: text hit"},
      {"plan_cache.misses", nullptr, "plan_cache: text miss, parsed + interned"},
      {"plan_cache.program_hits", nullptr,
       "plan_cache: program hit (canonical root)"},
      {"plan_cache.program_misses", nullptr, "plan_cache: program miss, lowered"},
      {"superopt.optimized", nullptr, "superopt: program rewritten"},
      {"superopt.unchanged", nullptr, "superopt: no improving rewrite"},
      {"plan_cache.profile_reopt", nullptr, "plan_cache: profile reopt"},
  };
  bool ok = true;
  for (const Pair& pair : kPairs) {
    const int64_t from_trace = pair.trace_attr != nullptr
                                   ? SumAttr(root, pair.trace_attr)
                                   : CountNotes(root, pair.trace_note);
    const int64_t from_registry = DeltaCounter(delta, pair.counter);
    if (from_trace != from_registry) {
      ok = false;
      mismatches->push_back(std::string(pair.counter) + ": trace=" +
                            std::to_string(from_trace) + " registry=" +
                            std::to_string(from_registry));
    }
  }
  // Dispatch decisions: each trace note `dispatch: <name>` must correspond
  // to exactly one increment of the matching exec.dispatch.<name> counter.
  for (const char* name :
       {"register_machine", "downward_fallback", "downward_direct",
        "general"}) {
    const int64_t from_trace =
        CountNotes(root, std::string("dispatch: ") + name);
    const int64_t from_registry =
        DeltaCounter(delta, std::string("exec.dispatch.") + name);
    if (from_trace != from_registry) {
      ok = false;
      mismatches->push_back(std::string("exec.dispatch.") + name +
                            ": trace=" + std::to_string(from_trace) +
                            " registry=" + std::to_string(from_registry));
    }
  }
  // Axis density dispatch: every kernel invocation adds 1 to exactly one of
  // axis.<name>.{sparse,dense}_path on both channels.
  for (int a = 0; a < kNumAxes; ++a) {
    const std::string base =
        std::string("axis.") + AxisToString(static_cast<Axis>(a));
    for (const char* path : {".sparse_path", ".dense_path"}) {
      const std::string counter = base + path;
      const int64_t from_trace = SumAttr(root, counter);
      const int64_t from_registry = DeltaCounter(delta, counter);
      if (from_trace != from_registry) {
        ok = false;
        mismatches->push_back(counter + ": trace=" +
                              std::to_string(from_trace) + " registry=" +
                              std::to_string(from_registry));
      }
    }
  }
  return ok;
}

/// Counters only, timing-free: `*_ns` counters (lowering wall time) vary
/// run to run and would break the golden output; histograms are all
/// timings; gauges are levels owned by long-lived components, not flows a
/// single query moved.
std::string DeterministicDeltaJson(const Snapshot& delta) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : delta.counters) {
    if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
      continue;
    }
    if (!first) out.append(", ");
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\": ");
    out.append(std::to_string(v));
  }
  out.push_back('}');
  return out;
}

/// Streams a cost as `operator<<` would (the static model is
/// integer-valued, so "5" not "5.000000") — deterministic for goldens.
std::string FmtCost(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<ExplainOutput> ExplainQuery(const ExplainOptions& options) {
  Alphabet alphabet;

  // --- Document ---------------------------------------------------------
  std::shared_ptr<Tree> tree;
  std::string document_line;
  if (!options.xml.empty()) {
    XPTC_ASSIGN_OR_RETURN(Tree parsed, ParseXml(options.xml, &alphabet));
    tree = std::make_shared<Tree>(std::move(parsed));
    document_line = "xml n=" + std::to_string(tree->size());
  } else {
    if (options.gen_nodes <= 0) {
      return Status::InvalidArgument("gen_nodes must be positive");
    }
    XPTC_ASSIGN_OR_RETURN(TreeShape shape, ShapeFromString(options.gen_shape));
    Rng rng(options.gen_seed);
    TreeGenOptions gen;
    gen.num_nodes = options.gen_nodes;
    gen.shape = shape;
    tree = std::make_shared<Tree>(
        GenerateTree(gen, DefaultLabels(&alphabet, options.gen_labels), &rng));
    document_line = "generated shape=" + options.gen_shape +
                    " n=" + std::to_string(tree->size()) +
                    " seed=" + std::to_string(options.gen_seed) +
                    " labels=" + std::to_string(options.gen_labels);
  }

  // --- Traced pipeline: parse → lower → execute → cross-check -----------
  const Snapshot before = Registry::Default().Collect();

  QueryTrace trace;
  PlanCache cache;
  TreeCache tree_cache(tree);
  exec::ExecEngine engine(*tree, &tree_cache);
  PlanCache::CompiledQuery compiled;
  Bitset compiled_result;
  Bitset interp_result;
  {
    QueryTrace::Scope scope(&trace);
    {
      TraceSpan parse_span("plan_cache.parse_compiled");
      XPTC_ASSIGN_OR_RETURN(compiled,
                            cache.ParseCompiled(options.query, &alphabet));
      const exec::CompileStats& stats = compiled.program->stats();
      parse_span.Attr("instrs", stats.num_instrs);
      parse_span.Attr("regs", stats.num_regs);
      parse_span.Attr("dag_hits", stats.dag_hits);
      parse_span.Attr("downward", stats.downward ? 1 : 0);
    }
    compiled_result = engine.Eval(*compiled.program);
    {
      TraceSpan interp_span("interpreter.select");
      interp_result = compiled.query->Select(*tree);
      interp_span.Attr("result_count",
                       static_cast<int64_t>(interp_result.Count()));
    }
  }

  const Snapshot delta = Registry::Default().Collect().Delta(before);
  const bool match = compiled_result == interp_result;

  ExplainOutput out;
  out.match = match;
  out.trace_json = trace.ToJson(/*with_times=*/false);
  out.registry_json = DeterministicDeltaJson(delta);
  std::vector<std::string> mismatches;
  out.consistent = TraceMatchesRegistry(trace.root(), delta, &mismatches);

  // --- Rendering --------------------------------------------------------
  const Query& query = *compiled.query;
  const exec::Program& program = *compiled.program;
  const exec::ExecEngine::RunInfo& run = engine.last_run();
  const char* dispatch = exec::ExecEngine::DispatchName(run.dispatch);

  if (options.json) {
    std::string& r = out.rendered;
    r = "{\n  \"query\": ";
    AppendJsonEscaped(&r, options.query);
    r.append(",\n  \"document\": ");
    AppendJsonEscaped(&r, document_line);
    r.append(",\n  \"dialect\": {\"plan\": \"");
    r.append(DialectToString(query.dialect()));
    r.append("\", \"source\": \"");
    r.append(DialectToString(query.source_dialect()));
    r.append("\"},\n  \"dispatch\": \"");
    r.append(dispatch);
    r.append("\",\n  \"superopt\": ");
    if (program.pre_superopt() != nullptr) {
      const exec::SuperoptStats& so = program.superopt_stats();
      r.append("{\"rounds\": " + std::to_string(so.rounds) +
               ", \"candidates\": " + std::to_string(so.candidates) +
               ", \"fused\": " + std::to_string(so.fused) +
               ", \"merged\": " + std::to_string(so.merged) +
               ", \"hoisted\": " + std::to_string(so.hoisted) +
               ", \"sunk\": " + std::to_string(so.sunk) +
               ", \"dropped\": " + std::to_string(so.dropped) +
               ", \"cost_before\": " + FmtCost(so.cost_before) +
               ", \"cost_after\": " + FmtCost(so.cost_after) + "}");
    } else {
      r.append("null");
    }
    r.append(",\n  \"star_rounds_used\": ");
    r.append(std::to_string(run.star_rounds_used));
    r.append(",\n  \"star_round_budget\": ");
    r.append(std::to_string(run.star_round_budget));
    r.append(",\n  \"result_count\": ");
    r.append(std::to_string(compiled_result.Count()));
    r.append(",\n  \"match\": ");
    r.append(match ? "true" : "false");
    r.append(",\n  \"consistent\": ");
    r.append(out.consistent ? "true" : "false");
    r.append(",\n  \"registry_delta\": ");
    r.append(out.registry_json);
    r.append(",\n  \"trace\": ");
    r.append(trace.ToJson(options.with_times));
    r.append("}\n");
    return out;
  }

  std::ostringstream os;
  os << "EXPLAIN " << options.query << "\n";
  os << "document: " << document_line << "\n";
  os << "dialect: plan=" << DialectToString(query.dialect())
     << " source=" << DialectToString(query.source_dialect()) << "\n";
  os << "plan: " << NodeToString(*query.plan(), alphabet) << "\n";
  os << "\n";

  const exec::CompileStats& stats = program.stats();
  os << "program: " << program.code().size() << " instrs, "
     << program.num_regs() << " regs, result r" << program.result_reg()
     << ", main [0," << program.main_end() << "), dag_hits=" << stats.dag_hits
     << ", downward=" << (stats.downward ? "yes" : "no");
  if (stats.downward) os << " (bit_ops=" << stats.bit_ops << ")";
  os << "\n";
  const bool superoptimized = program.pre_superopt() != nullptr;
  const std::vector<double> after_costs =
      superoptimized ? exec::EstimateInstrCosts(program)
                     : std::vector<double>();
  for (size_t i = 0; i < program.code().size(); ++i) {
    os << "  " << i << ": "
       << program.InstrToString(static_cast<int>(i), alphabet);
    if (i < run.instr_execs.size()) {
      os << "   [execs " << run.instr_execs[i] << "]";
    }
    if (i < after_costs.size()) os << " [est " << FmtCost(after_costs[i]) << "]";
    os << "\n";
  }
  if (superoptimized) {
    // Before/after bytecode diff: the listing above is the rewritten
    // program; here is the pre-superopt form with the same per-instruction
    // cost model, so the deltas the beam acted on are visible side by side.
    const exec::SuperoptStats& so = program.superopt_stats();
    const exec::Program& before = *program.pre_superopt();
    const std::vector<double> before_costs = exec::EstimateInstrCosts(before);
    os << "superopt: rewritten in " << so.rounds << " rounds ("
       << so.candidates << " candidates scored): fused=" << so.fused
       << " merged=" << so.merged << " hoisted=" << so.hoisted
       << " sunk=" << so.sunk << " dropped=" << so.dropped << ", est cost "
       << FmtCost(so.cost_before) << " -> " << FmtCost(so.cost_after) << "\n";
    os << "  before superopt: " << before.code().size() << " instrs, "
       << before.num_regs() << " regs\n";
    for (size_t i = 0; i < before.code().size(); ++i) {
      os << "    " << i << ": "
         << before.InstrToString(static_cast<int>(i), alphabet);
      if (i < before_costs.size()) {
        os << "   [est " << FmtCost(before_costs[i]) << "]";
      }
      os << "\n";
    }
  }
  os << "\n";
  os << "dispatch: " << dispatch << "\n";
  os << "star rounds: used " << run.star_rounds_used;
  if (run.star_round_budget > 0) os << " of budget " << run.star_round_budget;
  os << "\n";
  os << "result: " << compiled_result.Count() << "/" << tree->size()
     << " nodes\n";
  os << "cross-check: "
     << (match ? "interpreter bit-for-bit match" : "INTERPRETER MISMATCH")
     << "\n";
  os << "\n";
  os << "trace:\n" << trace.ToText(options.with_times);
  os << "\n";
  os << "registry delta (counters): " << out.registry_json << "\n";
  os << "consistent: " << (out.consistent ? "true" : "false") << "\n";
  for (const std::string& m : mismatches) {
    os << "  inconsistent " << m << "\n";
  }
  out.rendered = os.str();
  return out;
}

}  // namespace obs
}  // namespace xptc
