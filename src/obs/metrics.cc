#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace xptc {
namespace obs {

int Counter::ShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kShards));
  return shard;
}

void Histogram::Merge(const Histogram& other) {
  for (int k = 0; k < kBuckets; ++k) {
    int64_t b = other.buckets_[k].load(std::memory_order_relaxed);
    if (b != 0) buckets_[k].fetch_add(b, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void Snapshot::AddHistogram(const std::string& name, const Histogram& h) {
  HistogramData& data = histograms[name];
  data.count += h.count();
  data.sum += h.sum();
  for (int k = 0; k < Histogram::kBuckets; ++k) {
    int64_t b = h.bucket(k);
    if (b != 0) data.buckets[k] += b;
  }
}

Snapshot Snapshot::Delta(const Snapshot& base) const {
  Snapshot out;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    int64_t d = v - (it == base.counters.end() ? 0 : it->second);
    if (d != 0) out.counters[name] = d;
  }
  for (const auto& [name, h] : histograms) {
    auto it = base.histograms.find(name);
    HistogramData d = h;
    if (it != base.histograms.end()) {
      d.count -= it->second.count;
      d.sum -= it->second.sum;
      for (const auto& [k, b] : it->second.buckets) {
        d.buckets[k] -= b;
        if (d.buckets[k] == 0) d.buckets.erase(k);
      }
    }
    if (d.count != 0 || !d.buckets.empty()) out.histograms[name] = d;
  }
  return out;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  // Metric names are dotted identifiers (no quotes/backslashes/control
  // characters), so no escaping is needed.
  out->append(name);
  out->append("\": ");
}

std::string PromName(const std::string& name) {
  std::string out = "xptc_";
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out->append(buf);
}

}  // namespace

std::string Snapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    AppendInt(&out, v);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, v] : gauges) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    AppendInt(&out, v);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, h] : histograms) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(&out, name);
    out.append("{\"count\": ");
    AppendInt(&out, h.count);
    out.append(", \"sum\": ");
    AppendInt(&out, h.sum);
    out.append(", \"buckets\": {");
    bool bfirst = true;
    for (const auto& [k, b] : h.buckets) {
      if (!bfirst) out.append(", ");
      bfirst = false;
      out.push_back('"');
      AppendInt(&out, k);
      out.append("\": ");
      AppendInt(&out, b);
    }
    out.append("}}");
  }
  out.append(first ? "}\n" : "\n  }\n");
  out.append("}\n");
  return out;
}

std::string Snapshot::ToPrometheusText() const {
  // Exposition-format contract (text format 0.0.4, promtool-lint clean):
  // counter sample names carry the `_total` suffix, every family gets a
  // HELP line before its TYPE line, families are contiguous, histogram
  // buckets are cumulative with `le` boundaries that really bound their
  // bucket's values (inclusive integer upper bounds; the top bucket uses
  // INT64_MAX so no counted value exceeds its own `le`), `+Inf` equals
  // `_count`, and the output ends with a newline. tests/obs_test.cc pins
  // this with a golden file and a promtool-style line validator.
  std::string out;
  for (const auto& [name, v] : counters) {
    std::string p = PromName(name) + "_total";
    out.append("# HELP ").append(p).append(" Monotonic counter ")
        .append(name).append("\n");
    out.append("# TYPE ").append(p).append(" counter\n");
    out.append(p).append(" ");
    AppendInt(&out, v);
    out.push_back('\n');
  }
  for (const auto& [name, v] : gauges) {
    std::string p = PromName(name);
    out.append("# HELP ").append(p).append(" Gauge ").append(name)
        .append("\n");
    out.append("# TYPE ").append(p).append(" gauge\n");
    out.append(p).append(" ");
    AppendInt(&out, v);
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms) {
    std::string p = PromName(name);
    out.append("# HELP ").append(p).append(" Log2-bucketed histogram ")
        .append(name).append("\n");
    out.append("# TYPE ").append(p).append(" histogram\n");
    int64_t cumulative = 0;
    for (const auto& [k, b] : h.buckets) {
      cumulative += b;
      out.append(p).append("_bucket{le=\"");
      // Inclusive upper bound of bucket k; bucket 63 holds values up to
      // INT64_MAX itself, so its boundary must not be UpperBound - 1.
      AppendInt(&out, k >= 63 ? INT64_MAX
                              : Histogram::BucketUpperBound(k) - 1);
      out.append("\"} ");
      AppendInt(&out, cumulative);
      out.push_back('\n');
    }
    out.append(p).append("_bucket{le=\"+Inf\"} ");
    AppendInt(&out, h.count);
    out.push_back('\n');
    out.append(p).append("_sum ");
    AppendInt(&out, h.sum);
    out.push_back('\n');
    out.append(p).append("_count ");
    AppendInt(&out, h.count);
    out.push_back('\n');
  }
  return out;
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();  // leaked: see header
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Registry::CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

Registry::CollectorHandle& Registry::CollectorHandle::operator=(
    CollectorHandle&& other) noexcept {
  if (this != &other) {
    this->~CollectorHandle();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Registry::CollectorHandle::~CollectorHandle() {
  if (registry_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_->mu_);
  auto it = registry_->collectors_.find(id_);
  if (it != registry_->collectors_.end()) {
    // Retire the instance's final contribution so process-lifetime totals
    // survive the instance. Gauges are levels of a now-dead instance and
    // are intentionally dropped.
    Snapshot last;
    it->second(&last);
    Snapshot& retired = registry_->retired_;
    for (const auto& [name, v] : last.counters) retired.counters[name] += v;
    for (const auto& [name, h] : last.histograms) {
      Snapshot::HistogramData& data = retired.histograms[name];
      data.count += h.count;
      data.sum += h.sum;
      for (const auto& [k, b] : h.buckets) data.buckets[k] += b;
    }
    registry_->collectors_.erase(it);
  }
  registry_ = nullptr;
}

Registry::CollectorHandle Registry::AddCollector(Collector fn) {
  CollectorHandle handle;
  std::lock_guard<std::mutex> lock(mu_);
  handle.registry_ = this;
  handle.id_ = next_collector_id_++;
  collectors_.emplace(handle.id_, std::move(fn));
  return handle;
}

Snapshot Registry::Collect() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters = retired_.counters;
  snap.histograms = retired_.histograms;
  for (const auto& [name, c] : counters_) snap.counters[name] += c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.AddHistogram(name, *h);
  for (const auto& [id, fn] : collectors_) fn(&snap);
  return snap;
}

}  // namespace obs
}  // namespace xptc
