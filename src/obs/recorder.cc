#include "obs/recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace xptc {
namespace obs {

namespace {

// splitmix64 finaliser: the id mint and the sampling hash. Sampling must
// hash rather than use the raw id — minted ids are sequential under the
// mix, and client-supplied ids are arbitrary; the mix makes 1-in-N hold
// for both.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct PhaseMetrics {
  Histogram* h[kNumPhases];

  static PhaseMetrics& Get() {
    static PhaseMetrics* m = [] {
      Registry& reg = Registry::Default();
      auto* pm = new PhaseMetrics();
      pm->h[0] = &reg.histogram("server.phase.accept_ns");
      pm->h[1] = &reg.histogram("server.phase.parse_ns");
      pm->h[2] = &reg.histogram("server.phase.queue_ns");
      pm->h[3] = &reg.histogram("server.phase.exec_ns");
      pm->h[4] = &reg.histogram("server.phase.encode_ns");
      pm->h[5] = &reg.histogram("server.phase.flush_ns");
      return pm;
    }();
    return *m;
  }
};

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

thread_local RequestTrace* t_trace = nullptr;

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAccept: return "accept";
    case Phase::kParse: return "parse";
    case Phase::kQueue: return "queue";
    case Phase::kExec: return "exec";
    case Phase::kEncode: return "encode";
    case Phase::kFlush: return "flush";
  }
  return "?";
}

std::string FormatFlightId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool ParseFlightId(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t v = 0;
  for (char c : text) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

uint64_t DeriveFlightId(const std::string& text) {
  if (text.empty()) return 0;
  uint64_t id = 0;
  if (ParseFlightId(text, &id) && id != 0) return id;
  // FNV-1a then mix: arbitrary client request-id strings get a stable
  // nonzero flight id so their requests still correlate end to end.
  uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  id = Mix64(h);
  return id == 0 ? 1 : id;
}

std::string RequestTraceJson(const RequestTrace& trace) {
  std::string out = "{\"id\":\"" + FormatFlightId(trace.id) + "\"";
  if (trace.wire_request_id != 0) {
    out += ",\"request_id\":" + std::to_string(trace.wire_request_id);
  }
  out += ",\"op\":\"" + trace.op + "\"";
  out += ",\"proto\":\"";
  out += trace.is_http ? "http" : "binary";
  out += "\"";
  if (!trace.peer.empty()) {
    out += ",\"peer\":\"";
    AppendEscaped(&out, trace.peer);
    out += "\"";
  }
  if (!trace.query.empty()) {
    out += ",\"query\":\"";
    AppendEscaped(&out, trace.query);
    out += "\"";
  }
  out += ",\"code\":" + std::to_string(trace.code);
  out += ",\"sampled\":";
  out += trace.sampled ? "true" : "false";
  out += ",\"start_ns\":" + std::to_string(trace.start_ns);
  out += ",\"total_ns\":" + std::to_string(trace.total_ns);
  out += ",\"phases\":{";
  for (int p = 0; p < kNumPhases; ++p) {
    if (p > 0) out += ",";
    out += "\"";
    out += PhaseName(static_cast<Phase>(p));
    out += "_ns\":" + std::to_string(trace.phase_ns[p]);
  }
  out += "}";
  if (!trace.spans.empty()) {
    out += ",\"spans\":[";
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const WorkerSpan& s = trace.spans[i];
      if (i > 0) out += ",";
      out += "{\"worker\":" + std::to_string(s.worker) +
             ",\"tree\":" + std::to_string(s.tree_id) +
             ",\"query\":" + std::to_string(s.query_index) +
             ",\"start_ns\":" + std::to_string(s.start_ns) +
             ",\"elapsed_ns\":" + std::to_string(s.elapsed_ns) + "}";
    }
    out += "]";
  }
  if (!trace.notes.empty()) {
    out += ",\"notes\":[";
    for (size_t i = 0; i < trace.notes.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      AppendEscaped(&out, trace.notes[i]);
      out += "\"";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string RequestTraceText(const RequestTrace& trace) {
  std::string out = "request " + FormatFlightId(trace.id) + "  op=" +
                    trace.op + "  proto=" +
                    (trace.is_http ? "http" : "binary");
  if (!trace.peer.empty()) out += "  peer=" + trace.peer;
  out += "  code=" + std::to_string(trace.code) + "\n";
  if (!trace.query.empty()) out += "  query: " + trace.query + "\n";
  out += "  total: " + std::to_string(trace.total_ns) + " ns\n";
  for (int p = 0; p < kNumPhases; ++p) {
    out += "    ";
    out += PhaseName(static_cast<Phase>(p));
    out += ": " + std::to_string(trace.phase_ns[p]) + " ns\n";
  }
  if (!trace.spans.empty()) {
    out += "  fan-out (" + std::to_string(trace.spans.size()) + " tasks):\n";
    for (const WorkerSpan& s : trace.spans) {
      out += "    worker " + std::to_string(s.worker) + "  tree " +
             std::to_string(s.tree_id) + "  query " +
             std::to_string(s.query_index) + "  " +
             std::to_string(s.elapsed_ns) + " ns\n";
    }
  }
  for (const std::string& note : trace.notes) {
    out += "  note: " + note + "\n";
  }
  return out;
}

FlightRecorder::FlightRecorder() {
  uint32_t n = 64;  // sample 1-in-64 by default: always-on, production-safe
  if (const char* env = std::getenv("XPTC_TRACE_SAMPLE")) {
    const long long v = std::atoll(env);
    if (v >= 0 && v <= 0x7fffffff) n = static_cast<uint32_t>(v);
  }
  sample_n_.store(n, std::memory_order_relaxed);
  slow_.reserve(kSlowLogSize);
  recent_.resize(kRecentSize);
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked singleton
  return *instance;
}

uint64_t FlightRecorder::MintId() {
  for (;;) {
    const uint64_t id =
        Mix64(next_id_.fetch_add(1, std::memory_order_relaxed));
    if (id != 0) return id;
  }
}

bool FlightRecorder::Sampled(uint64_t id) const {
  const uint32_t n = sample_n_.load(std::memory_order_relaxed);
  if (n == 0) return false;
  if (n == 1) return true;
  return Mix64(id) % n == 0;
}

void FlightRecorder::ObservePhase(Phase phase, int64_t ns) {
  PhaseMetrics::Get().h[static_cast<int>(phase)]->Observe(ns);
}

void FlightRecorder::Record(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_) log_(trace);
  if (!trace.sampled) return;
  recent_[recent_next_] = trace;
  recent_next_ = (recent_next_ + 1) % kRecentSize;
  if (slow_.size() < kSlowLogSize) {
    slow_.push_back(std::move(trace));
    return;
  }
  // Ring-evict the fastest resident entry when the newcomer is slower.
  size_t min_i = 0;
  for (size_t i = 1; i < slow_.size(); ++i) {
    if (slow_[i].total_ns < slow_[min_i].total_ns) min_i = i;
  }
  if (trace.total_ns > slow_[min_i].total_ns) {
    slow_[min_i] = std::move(trace);
  }
}

std::string FlightRecorder::SlowJson() const {
  std::vector<RequestTrace> top;
  uint32_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    top = slow_;
    n = sample_n_.load(std::memory_order_relaxed);
  }
  std::sort(top.begin(), top.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              return a.total_ns > b.total_ns;
            });
  std::string out = "{\"sample_every_n\":" + std::to_string(n) +
                    ",\"count\":" + std::to_string(top.size()) +
                    ",\"slow\":[";
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out += ",";
    out += RequestTraceJson(top[i]);
  }
  out += "]}\n";
  return out;
}

bool FlightRecorder::Lookup(uint64_t id, RequestTrace* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RequestTrace& t : slow_) {
    if (t.id == id) {
      *out = t;
      return true;
    }
  }
  for (const RequestTrace& t : recent_) {
    if (t.id == id) {
      *out = t;
      return true;
    }
  }
  return false;
}

void FlightRecorder::SetCompletionLog(
    std::function<void(const RequestTrace&)> log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = std::move(log);
  log_installed_.store(log_ != nullptr, std::memory_order_release);
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slow_.clear();
  recent_.assign(kRecentSize, RequestTrace{});
  recent_next_ = 0;
}

ScopedRequestTrace::ScopedRequestTrace(RequestTrace* trace)
    : saved_(t_trace) {
  t_trace = trace;
}

ScopedRequestTrace::~ScopedRequestTrace() { t_trace = saved_; }

RequestTrace* CurrentRequestTrace() { return t_trace; }

}  // namespace obs
}  // namespace xptc
