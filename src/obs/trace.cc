#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace xptc {
namespace obs {

namespace {

thread_local TraceNode* g_current = nullptr;

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out->append(buf);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NodeToJson(const TraceNode& node, bool with_times, int indent,
                std::string* out) {
  std::string pad(static_cast<size_t>(indent), ' ');
  out->append(pad).append("{\"name\": ");
  AppendJsonString(out, node.name);
  if (with_times) {
    out->append(", \"elapsed_ns\": ");
    AppendInt(out, node.elapsed_ns);
  }
  if (!node.attrs.empty()) {
    out->append(", \"attrs\": {");
    bool first = true;
    for (const auto& [key, v] : node.attrs) {
      if (!first) out->append(", ");
      first = false;
      AppendJsonString(out, key);
      out->append(": ");
      AppendInt(out, v);
    }
    out->push_back('}');
  }
  if (!node.notes.empty()) {
    out->append(", \"notes\": [");
    bool first = true;
    for (const std::string& note : node.notes) {
      if (!first) out->append(", ");
      first = false;
      AppendJsonString(out, note);
    }
    out->push_back(']');
  }
  if (!node.children.empty()) {
    out->append(", \"children\": [\n");
    for (size_t i = 0; i < node.children.size(); ++i) {
      NodeToJson(*node.children[i], with_times, indent + 2, out);
      if (i + 1 < node.children.size()) out->push_back(',');
      out->push_back('\n');
    }
    out->append(pad).push_back(']');
  }
  out->push_back('}');
}

void NodeToText(const TraceNode& node, bool with_times, int indent,
                std::string* out) {
  out->append(static_cast<size_t>(indent), ' ');
  out->append(node.name);
  for (const auto& [key, v] : node.attrs) {
    out->push_back(' ');
    out->append(key).push_back('=');
    AppendInt(out, v);
  }
  if (with_times && node.elapsed_ns > 0) {
    out->append(" elapsed_ns=");
    AppendInt(out, node.elapsed_ns);
  }
  out->push_back('\n');
  for (const std::string& note : node.notes) {
    out->append(static_cast<size_t>(indent + 2), ' ');
    out->append("- ").append(note).push_back('\n');
  }
  for (const auto& child : node.children) {
    NodeToText(*child, with_times, indent + 2, out);
  }
}

}  // namespace

void TraceNode::AddAttr(const std::string& key, int64_t delta) {
  for (auto& [k, v] : attrs) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  attrs.emplace_back(key, delta);
}

void TraceNode::SetAttr(const std::string& key, int64_t v) {
  for (auto& [k, existing] : attrs) {
    if (k == key) {
      existing = v;
      return;
    }
  }
  attrs.emplace_back(key, v);
}

const int64_t* TraceNode::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

QueryTrace::QueryTrace() { root_.name = "query"; }
QueryTrace::~QueryTrace() = default;

QueryTrace::Scope::Scope(QueryTrace* trace) : saved_(g_current) {
  g_current = &trace->root();
}

QueryTrace::Scope::~Scope() { g_current = saved_; }

TraceNode* QueryTrace::Current() { return g_current; }

std::string QueryTrace::ToJson(bool with_times) const {
  std::string out;
  NodeToJson(root_, with_times, 0, &out);
  out.push_back('\n');
  return out;
}

std::string QueryTrace::ToText(bool with_times) const {
  std::string out;
  NodeToText(root_, with_times, 0, &out);
  return out;
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceSpan::TraceSpan(const char* name, Histogram* flame) : flame_(flame) {
  if (g_current != nullptr) {
    saved_ = g_current;
    auto child = std::make_unique<TraceNode>();
    child->name = name;
    node_ = child.get();
    saved_->children.push_back(std::move(child));
    g_current = node_;
  }
#if XPTC_OBS
  if (node_ != nullptr || flame_ != nullptr) start_ns_ = NowNs();
#endif
}

TraceSpan::~TraceSpan() {
#if XPTC_OBS
  if (node_ != nullptr || flame_ != nullptr) {
    int64_t elapsed = NowNs() - start_ns_;
    if (node_ != nullptr) node_->elapsed_ns = elapsed;
    if (flame_ != nullptr) flame_->Observe(elapsed);
  }
#endif
  if (node_ != nullptr) g_current = saved_;
}

void TraceSpan::Attr(const char* key, int64_t v) {
  if (node_ != nullptr) node_->SetAttr(key, v);
}

void TraceSpan::AddAttr(const char* key, int64_t delta) {
  if (node_ != nullptr) node_->AddAttr(key, delta);
}

void TraceSpan::Note(std::string note) {
  if (node_ != nullptr) node_->notes.push_back(std::move(note));
}

void TraceAddCount(const char* key, int64_t delta) {
  if (g_current != nullptr) g_current->AddAttr(key, delta);
}

void TraceNote(std::string note) {
  if (g_current != nullptr) g_current->notes.push_back(std::move(note));
}

}  // namespace obs
}  // namespace xptc
