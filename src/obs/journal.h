#ifndef XPTC_OBS_JOURNAL_H_
#define XPTC_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace xptc {
namespace obs {

/// The serving path's post-mortem event journal: one fixed-size ring of
/// binary records per thread, written lock-free by the owning thread and
/// readable by anyone (including a crash-signal handler). It is cheap
/// enough to leave on everywhere — a record is one TLS load, one relaxed
/// branch, a 32-byte store, and a release head bump — so after a SIGSEGV,
/// a SIGABRT, or an overload collapse the last ~64k events of every thread
/// are still there, in per-thread program order.
///
/// Consistency model: each ring is single-writer (its owner thread).
/// Readers walk rings concurrently and may observe a torn record at the
/// write frontier; the decoder tolerates that (a flight recorder trades
/// the last instant for never perturbing the flight). Within one thread,
/// record order IS event order; across threads, `ts_ns` orders events on
/// one monotonic clock.

/// Event codes. The `arg` meaning is per-code (bytes, a seq, a count, …).
enum class JournalCode : uint32_t {
  kNone = 0,
  kAccept = 1,         // arg = connection id
  kParse = 2,          // arg = connection id
  kParseError = 3,     // arg = connection id
  kAdmit = 4,          // arg = queue depth after push
  kShed = 5,           // arg = connection id
  kDrainingReject = 6, // arg = connection id
  kInlineReply = 7,    // arg = response bytes
  kWorkerPop = 8,      // arg = queue wait ns
  kExecStart = 9,      // arg = worker id
  kExecEnd = 10,       // arg = exec ns
  kEncode = 11,        // arg = response bytes
  kFlushStart = 12,    // arg = connection id
  kFlushEnd = 13,      // arg = flush ns
  kConnClose = 14,     // arg = connection id
  kDeadlineQueue = 15, // arg = ns past deadline
  kDeadlineExec = 16,  // arg = star rounds used when abandoned
  kBatchTask = 17,     // arg = (tree_id << 16) | query index
  kDrain = 18,         // arg = connections still open
  kCrash = 19,         // arg = signal number (written by the crash handler)
  kMark = 20,          // arg = caller-defined (tests, tools)
};

/// Stable lowercase name for a code ("exec_start", …); "?" when unknown.
const char* JournalCodeName(uint32_t code);

/// One journal record: 32 bytes, plain data, written in place in the ring
/// and memcpy'd verbatim into dumps (same-machine decode; the dump header
/// carries the record size so foreign decoders can at least skip).
struct JournalRecord {
  int64_t ts_ns = 0;        // obs::NowNs clock
  uint64_t request_id = 0;  // flight id, 0 = not request-scoped
  uint64_t arg = 0;
  uint32_t code = 0;  // JournalCode
  uint32_t seq = 0;   // per-thread write counter (mod 2^32): order witness
};
static_assert(sizeof(JournalRecord) == 32, "journal records are 32 bytes");

class Journal {
 public:
  /// Appends one record to the calling thread's ring (allocating and
  /// registering the ring on the thread's first event). No-op while
  /// disabled. `request_id` 0 means "use the thread's current flight id"
  /// (see ScopedRequestId) — pass kNoRequest to force 0. `ts_ns` 0 reads
  /// the clock; call sites that just read it for phase timing pass their
  /// timestamp instead, so a hot-path event costs one clock read, not two.
  static void Record(JournalCode code, uint64_t arg, uint64_t request_id = 0,
                     int64_t ts_ns = 0);
  static constexpr uint64_t kNoRequest = ~uint64_t{0};

  /// Global on/off. Default: on, unless env XPTC_JOURNAL=0. Toggling off
  /// stops new records; existing rings keep their contents.
  static void SetEnabled(bool on);
  static bool enabled();

  /// Records per thread ring (rounded up to a power of two). Default 65536,
  /// env XPTC_JOURNAL_EVENTS; fixed at the first ring allocation.
  static size_t ring_capacity();

  /// The calling thread's current flight id, stamped into records whose
  /// `request_id` is 0. Scope it around request execution so every
  /// instrumentation site below (exec deadline probe, batch tasks) is
  /// attributed without threading ids through signatures.
  class ScopedRequestId {
   public:
    explicit ScopedRequestId(uint64_t id);
    ~ScopedRequestId();
    ScopedRequestId(const ScopedRequestId&) = delete;
    ScopedRequestId& operator=(const ScopedRequestId&) = delete;

   private:
    uint64_t saved_;
  };
  static uint64_t CurrentRequestId();

  /// Serialises every ring, oldest record first per thread (see the dump
  /// format in journal.cc). Safe to call from any thread while writers run.
  static std::string DumpBinary();

  /// Async-signal-safe dump: only write(2), no allocation, no locks.
  /// Returns 0 on success, -1 on a write error.
  static int DumpToFd(int fd);

  /// Installs SIGSEGV/SIGBUS/SIGABRT handlers that append a kCrash record,
  /// dump every ring to `path` (O_TRUNC), and re-raise with the default
  /// disposition. `path` is copied into static storage (truncated at 511
  /// bytes). Idempotent; later calls just update the path.
  static void InstallCrashHandler(const std::string& path);

  /// Drops every registered ring's contents (heads reset to zero). Test
  /// and bench seam; not safe concurrently with writers on other threads.
  static void ResetForTesting();
};

/// A decoded journal dump: per-thread record vectors, oldest first, in the
/// order the threads registered.
struct JournalDump {
  std::vector<std::vector<JournalRecord>> threads;
};

/// Decodes `DumpBinary`/`DumpToFd` output. Bounds-checked; tolerates a
/// truncated final thread block (crash mid-write) by dropping it.
Result<JournalDump> ParseJournalDump(const std::string& bytes);

/// Renders a dump as JSON (the /debug/journal body): thread arrays of
/// {ts_ns, request_id (hex), code, arg, seq} objects, oldest first.
std::string JournalDumpToJson(const JournalDump& dump);

}  // namespace obs
}  // namespace xptc

#endif  // XPTC_OBS_JOURNAL_H_
