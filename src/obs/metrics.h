#ifndef XPTC_OBS_METRICS_H_
#define XPTC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Compile-time observability gate. Counters, gauges, histograms, and the
// trace *structure* are always available — they are the product surface the
// EXPLAIN CLI and the bench JSON are built on, and they cost a handful of
// relaxed atomic adds on hot paths. What XPTC_OBS gates is everything that
// reads a clock: flame-scoped timings in the evaluator, compiled engine,
// batch layer, and oracle runs. OFF compiles those to nothing, so an
// XPTC_OBS=OFF build is bit-identical in behaviour and (by the exp12 gate)
// indistinguishable in speed from a build that predates the obs layer.
#ifndef XPTC_OBS
#define XPTC_OBS 1
#endif

namespace xptc {
namespace obs {

/// Monotonic counter, sharded across cache lines so concurrent increments
/// from the batch engine's workers do not bounce one hot line around the
/// socket. Reads (`value()`) sum the shards — O(kShards), intended for
/// export and assertions, not for hot paths.
class Counter {
 public:
  static constexpr int kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    cells_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  int64_t value() const {
    int64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  /// Each thread picks one shard for life (round-robin at first touch);
  /// threads outnumbering shards share, which is still contention-free in
  /// the common pool-of-(cores-2) configuration.
  static int ShardIndex();

  Cell cells_[kShards];
};

/// Point-in-time value (queue depths, cache residency). Single atomic:
/// gauges are set from bookkeeping paths, not per-node hot loops.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log₂-bucketed histogram: bucket 0 holds values ≤ 0, bucket k ≥ 1 holds
/// [2^(k-1), 2^k). 64 buckets cover the whole int64 range, so an Observe is
/// one `bit_width` plus two relaxed atomic adds — cheap enough for
/// per-task and per-oracle-run timings. Thread-safe for concurrent
/// Observe/Merge/Snap (relaxed atomics: totals are exact once writers
/// quiesce, which is what the exporters and the stress harness need).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Adds `other`'s contents into this histogram (per-thread local
  /// histograms folding into a shared one at scope exit).
  void Merge(const Histogram& other);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }

  /// v ≤ 0 → 0; otherwise bit_width(v), so 1→1, 2..3→2, 4..7→3, …
  static int BucketFor(int64_t v) {
    if (v <= 0) return 0;
    return std::bit_width(static_cast<uint64_t>(v));
  }
  /// Inclusive lower bound of bucket k (k ≥ 1); bucket 0 has no lower bound.
  static int64_t BucketLowerBound(int k) {
    return k <= 1 ? (k == 0 ? 0 : 1) : (int64_t{1} << (k - 1));
  }
  /// Exclusive upper bound of bucket k.
  static int64_t BucketUpperBound(int k) {
    return k == 0 ? 1 : (k >= 63 ? INT64_MAX : (int64_t{1} << k));
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// A consistent-enough copy of every metric: plain values, mergeable,
/// diffable. `Delta` against an earlier snapshot is how the EXPLAIN CLI
/// attributes registry movement to one query.
struct Snapshot {
  struct HistogramData {
    int64_t count = 0;
    int64_t sum = 0;
    // Sparse: only non-empty buckets, keyed by bucket index.
    std::map<int, int64_t> buckets;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Accumulates `v` into counter `name` (collector contributions).
  void AddCounter(const std::string& name, int64_t v) { counters[name] += v; }
  void SetGauge(const std::string& name, int64_t v) { gauges[name] = v; }
  void AddHistogram(const std::string& name, const Histogram& h);

  /// this − base, counters and histograms only (gauges are levels, not
  /// flows; a delta of levels is not meaningful). Names absent from `base`
  /// count as zero there. Zero-valued counter deltas are dropped.
  Snapshot Delta(const Snapshot& base) const;

  /// Deterministic JSON: keys sorted (std::map iteration order), no
  /// whitespace dependence on map sizes. Histogram buckets appear as
  /// {"<index>": count} for non-empty buckets.
  std::string ToJson() const;

  /// Prometheus text exposition: `.` in names becomes `_`, everything is
  /// prefixed `xptc_`. Histograms emit cumulative `_bucket{le="..."}`
  /// series plus `_sum`/`_count`.
  std::string ToPrometheusText() const;
};

/// Process-wide metric registry. Named metrics are created on first touch
/// and never destroyed (stable references — hot paths look a metric up
/// once and keep the pointer). Components that keep *per-instance* counters
/// (PlanCache, ThreadPool, BatchEngine — their `stats()` accessors are API)
/// register a collector instead: a callback that folds the instance's
/// counters into each snapshot under registry-level names, summed across
/// instances.
class Registry {
 public:
  /// The process-wide default registry (leaked singleton: metrics must
  /// outlive any static-destruction-order games).
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// First touch creates; the returned reference is stable forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// RAII registration of a per-instance collector. Destroying the handle
  /// unregisters it — but first runs the collector one final time and
  /// *retires* its counter and histogram contributions into the registry,
  /// so process-lifetime totals stay monotonic after the instance dies
  /// (short-lived BatchEngines in the fuzzer, per-section PlanCaches in
  /// the benches). Gauges are levels owned by the live instance and drop
  /// on retirement. The handle must not outlive the registry (always true
  /// for Default()).
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(CollectorHandle&& other) noexcept;
    CollectorHandle& operator=(CollectorHandle&& other) noexcept;
    ~CollectorHandle();

   private:
    friend class Registry;
    Registry* registry_ = nullptr;
    uint64_t id_ = 0;
  };
  using Collector = std::function<void(Snapshot*)>;
  CollectorHandle AddCollector(Collector fn);

  /// Snapshot of every named metric plus every collector's contribution.
  Snapshot Collect() const;

  std::string Json() const { return Collect().ToJson(); }
  std::string PrometheusText() const { return Collect().ToPrometheusText(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  uint64_t next_collector_id_ = 1;
  std::map<uint64_t, Collector> collectors_;
  /// Final contributions of unregistered collectors (counters and
  /// histograms only), merged into every snapshot.
  Snapshot retired_;
};

}  // namespace obs
}  // namespace xptc

#endif  // XPTC_OBS_METRICS_H_
