#include "obs/journal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace xptc {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Ring storage.
//
// Rings live in a fixed global slot array so the crash handler can walk
// them without taking a lock: registration is a fetch_add on the slot
// count plus a release store of the pointer, and readers load the count
// with acquire. Rings are never freed. A thread that exits releases its
// ring back to a free pool (an atomic flag), and the next new recording
// thread reuses it with the head reset — so steady-state memory is
// bounded by the *concurrent* recording-thread high-water mark, not by
// the number of threads ever started (server tests start hundreds).
// ---------------------------------------------------------------------------

constexpr int kMaxRings = 256;

struct ThreadRing {
  std::atomic<uint64_t> head{0};  // total records ever written (mod 2^64)
  std::atomic<bool> in_use{false};
  uint64_t mask = 0;  // capacity - 1 (capacity is a power of two)
  JournalRecord* records = nullptr;
};

std::atomic<ThreadRing*> g_rings[kMaxRings];
std::atomic<int> g_ring_count{0};
std::atomic<bool> g_enabled{true};

size_t RingCapacity() {
  static const size_t cap = [] {
    size_t want = 65536;
    if (const char* env = std::getenv("XPTC_JOURNAL_EVENTS")) {
      const long long v = std::atoll(env);
      if (v >= 16 && v <= (1 << 24)) want = static_cast<size_t>(v);
    }
    size_t cap2 = 16;
    while (cap2 < want) cap2 <<= 1;
    return cap2;
  }();
  return cap;
}

struct EnabledInit {
  EnabledInit() {
    if (const char* env = std::getenv("XPTC_JOURNAL")) {
      if (env[0] == '0' && env[1] == '\0') {
        g_enabled.store(false, std::memory_order_relaxed);
      }
    }
  }
};

ThreadRing* AcquireRing() {
  static EnabledInit init_once;
  // Prefer recycling a ring whose owner thread has exited.
  const int n = g_ring_count.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    ThreadRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    bool expected = false;
    if (ring->in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      ring->head.store(0, std::memory_order_release);
      return ring;
    }
  }
  const int slot = g_ring_count.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxRings) {
    g_ring_count.store(kMaxRings, std::memory_order_release);
    return nullptr;
  }
  auto* ring = new ThreadRing();
  ring->mask = RingCapacity() - 1;
  ring->records = new JournalRecord[RingCapacity()]();
  ring->in_use.store(true, std::memory_order_relaxed);
  g_rings[slot].store(ring, std::memory_order_release);
  return ring;
}

// Releases the ring on thread exit so the next thread can recycle it.
struct RingHolder {
  ThreadRing* ring = nullptr;
  bool tried = false;
  ~RingHolder() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

thread_local RingHolder t_ring;
thread_local uint64_t t_request_id = 0;

ThreadRing* CurrentRing() {
  RingHolder& holder = t_ring;
  if (holder.ring == nullptr && !holder.tried) {
    holder.tried = true;  // a full slot table is not retried every event
    holder.ring = AcquireRing();
  }
  return holder.ring;
}

// ---------------------------------------------------------------------------
// Dump format (little-endian, same-machine decode):
//   u8  magic[8] = "XPTCJNL1"
//   u32 record_size (= sizeof(JournalRecord))
//   u32 num_threads
//   per thread:
//     u32 thread_index (registration slot)
//     u32 record_count
//     JournalRecord × record_count, oldest first (verbatim struct bytes)
// ---------------------------------------------------------------------------

constexpr char kDumpMagic[8] = {'X', 'P', 'T', 'C', 'J', 'N', 'L', '1'};

void PutU32Raw(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

// The two contiguous chunks of a ring, oldest records first. `head` is a
// snapshot: concurrent writers may tear records near the frontier, which
// the flight-recorder contract tolerates.
struct RingChunks {
  const JournalRecord* p1;
  uint64_t n1;
  const JournalRecord* p2;
  uint64_t n2;
};

RingChunks ChunksOf(const ThreadRing& ring, uint64_t head) {
  const uint64_t cap = ring.mask + 1;
  RingChunks c{nullptr, 0, nullptr, 0};
  if (head <= cap) {
    c.p1 = ring.records;
    c.n1 = head;
  } else {
    const uint64_t start = head & ring.mask;
    c.p1 = ring.records + start;
    c.n1 = cap - start;
    c.p2 = ring.records;
    c.n2 = start;
  }
  return c;
}

// write(2) until done; async-signal-safe.
int FullWrite(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    p += w;
    len -= static_cast<size_t>(w);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Crash handler.
// ---------------------------------------------------------------------------

char g_crash_path[512] = {0};

void CrashHandler(int sig) {
  // Attribute the crash in the faulting thread's own ring when it already
  // has one (allocating a ring here would not be signal-safe).
  if (t_ring.ring != nullptr && g_enabled.load(std::memory_order_relaxed)) {
    ThreadRing* ring = t_ring.ring;
    const uint64_t h = ring->head.load(std::memory_order_relaxed);
    JournalRecord& rec = ring->records[h & ring->mask];
    rec.ts_ns = 0;  // NowNs() is not guaranteed signal-safe; 0 marks it
    rec.request_id = t_request_id;
    rec.arg = static_cast<uint64_t>(sig);
    rec.code = static_cast<uint32_t>(JournalCode::kCrash);
    rec.seq = static_cast<uint32_t>(h);
    ring->head.store(h + 1, std::memory_order_release);
  }
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    Journal::DumpToFd(fd);
    ::close(fd);
  }
  // SA_RESETHAND restored the default disposition; re-raise terminates
  // with the original signal so exit status and core behaviour survive.
  ::raise(sig);
}

}  // namespace

const char* JournalCodeName(uint32_t code) {
  switch (static_cast<JournalCode>(code)) {
    case JournalCode::kNone: return "none";
    case JournalCode::kAccept: return "accept";
    case JournalCode::kParse: return "parse";
    case JournalCode::kParseError: return "parse_error";
    case JournalCode::kAdmit: return "admit";
    case JournalCode::kShed: return "shed";
    case JournalCode::kDrainingReject: return "draining_reject";
    case JournalCode::kInlineReply: return "inline_reply";
    case JournalCode::kWorkerPop: return "worker_pop";
    case JournalCode::kExecStart: return "exec_start";
    case JournalCode::kExecEnd: return "exec_end";
    case JournalCode::kEncode: return "encode";
    case JournalCode::kFlushStart: return "flush_start";
    case JournalCode::kFlushEnd: return "flush_end";
    case JournalCode::kConnClose: return "conn_close";
    case JournalCode::kDeadlineQueue: return "deadline_queue";
    case JournalCode::kDeadlineExec: return "deadline_exec";
    case JournalCode::kBatchTask: return "batch_task";
    case JournalCode::kDrain: return "drain";
    case JournalCode::kCrash: return "crash";
    case JournalCode::kMark: return "mark";
  }
  return "?";
}

void Journal::Record(JournalCode code, uint64_t arg, uint64_t request_id,
                     int64_t ts_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadRing* ring = CurrentRing();
  if (ring == nullptr) return;
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  JournalRecord& rec = ring->records[h & ring->mask];
  rec.ts_ns = ts_ns != 0 ? ts_ns : NowNs();
  rec.request_id = request_id == 0 ? t_request_id
                   : request_id == kNoRequest ? 0
                                              : request_id;
  rec.arg = arg;
  rec.code = static_cast<uint32_t>(code);
  rec.seq = static_cast<uint32_t>(h);
  ring->head.store(h + 1, std::memory_order_release);
}

void Journal::SetEnabled(bool on) {
  static EnabledInit init_once;  // a later SetEnabled wins over the env
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Journal::enabled() {
  static EnabledInit init_once;
  return g_enabled.load(std::memory_order_relaxed);
}

size_t Journal::ring_capacity() { return RingCapacity(); }

Journal::ScopedRequestId::ScopedRequestId(uint64_t id) : saved_(t_request_id) {
  t_request_id = id;
}

Journal::ScopedRequestId::~ScopedRequestId() { t_request_id = saved_; }

uint64_t Journal::CurrentRequestId() { return t_request_id; }

std::string Journal::DumpBinary() {
  std::string out(kDumpMagic, sizeof(kDumpMagic));
  PutU32Raw(&out, sizeof(JournalRecord));
  const int n = g_ring_count.load(std::memory_order_acquire);
  const int usable = n > kMaxRings ? kMaxRings : n;
  int present = 0;
  for (int i = 0; i < usable; ++i) {
    if (g_rings[i].load(std::memory_order_acquire) != nullptr) ++present;
  }
  PutU32Raw(&out, static_cast<uint32_t>(present));
  for (int i = 0; i < usable; ++i) {
    const ThreadRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const RingChunks c = ChunksOf(*ring, head);
    PutU32Raw(&out, static_cast<uint32_t>(i));
    PutU32Raw(&out, static_cast<uint32_t>(c.n1 + c.n2));
    out.append(reinterpret_cast<const char*>(c.p1),
               c.n1 * sizeof(JournalRecord));
    if (c.n2 != 0) {
      out.append(reinterpret_cast<const char*>(c.p2),
                 c.n2 * sizeof(JournalRecord));
    }
  }
  return out;
}

int Journal::DumpToFd(int fd) {
  if (FullWrite(fd, kDumpMagic, sizeof(kDumpMagic)) != 0) return -1;
  uint32_t header[2] = {sizeof(JournalRecord), 0};
  const int n = g_ring_count.load(std::memory_order_acquire);
  const int usable = n > kMaxRings ? kMaxRings : n;
  uint32_t present = 0;
  for (int i = 0; i < usable; ++i) {
    if (g_rings[i].load(std::memory_order_acquire) != nullptr) ++present;
  }
  header[1] = present;
  if (FullWrite(fd, header, sizeof(header)) != 0) return -1;
  for (int i = 0; i < usable; ++i) {
    const ThreadRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const RingChunks c = ChunksOf(*ring, head);
    uint32_t thead[2] = {static_cast<uint32_t>(i),
                         static_cast<uint32_t>(c.n1 + c.n2)};
    if (FullWrite(fd, thead, sizeof(thead)) != 0) return -1;
    if (FullWrite(fd, c.p1, c.n1 * sizeof(JournalRecord)) != 0) return -1;
    if (c.n2 != 0 &&
        FullWrite(fd, c.p2, c.n2 * sizeof(JournalRecord)) != 0) {
      return -1;
    }
  }
  return 0;
}

void Journal::InstallCrashHandler(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof(g_crash_path) - 1);
  g_crash_path[sizeof(g_crash_path) - 1] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashHandler;
  // SA_RESETHAND: one shot — a second fault inside the handler terminates
  // instead of recursing. SA_NODEFER is deliberately absent.
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

void Journal::ResetForTesting() {
  const int n = g_ring_count.load(std::memory_order_acquire);
  const int usable = n > kMaxRings ? kMaxRings : n;
  for (int i = 0; i < usable; ++i) {
    ThreadRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) ring->head.store(0, std::memory_order_release);
  }
}

Result<JournalDump> ParseJournalDump(const std::string& bytes) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  auto read_u32 = [&](uint32_t* out) {
    if (left < 4) return false;
    std::memcpy(out, p, 4);
    p += 4;
    left -= 4;
    return true;
  };
  if (left < sizeof(kDumpMagic) ||
      std::memcmp(p, kDumpMagic, sizeof(kDumpMagic)) != 0) {
    return Status::InvalidArgument("journal dump: bad magic");
  }
  p += sizeof(kDumpMagic);
  left -= sizeof(kDumpMagic);
  uint32_t record_size = 0, num_threads = 0;
  if (!read_u32(&record_size) || !read_u32(&num_threads)) {
    return Status::InvalidArgument("journal dump: truncated header");
  }
  if (record_size != sizeof(JournalRecord)) {
    return Status::InvalidArgument("journal dump: record size mismatch (" +
                                   std::to_string(record_size) + ")");
  }
  JournalDump dump;
  for (uint32_t t = 0; t < num_threads; ++t) {
    uint32_t index = 0, count = 0;
    if (!read_u32(&index) || !read_u32(&count)) break;  // crash mid-write
    const uint64_t need = uint64_t{count} * sizeof(JournalRecord);
    std::vector<JournalRecord> records;
    if (need > left) {
      // Truncated final block: keep the whole records that made it out.
      const size_t whole = left / sizeof(JournalRecord);
      records.resize(whole);
      std::memcpy(records.data(), p, whole * sizeof(JournalRecord));
      dump.threads.push_back(std::move(records));
      break;
    }
    records.resize(count);
    std::memcpy(records.data(), p, need);
    p += need;
    left -= need;
    dump.threads.push_back(std::move(records));
  }
  return dump;
}

std::string JournalDumpToJson(const JournalDump& dump) {
  std::string out = "{\"ring_capacity\":" +
                    std::to_string(Journal::ring_capacity()) +
                    ",\"threads\":[";
  for (size_t t = 0; t < dump.threads.size(); ++t) {
    if (t > 0) out += ",";
    out += "{\"thread\":" + std::to_string(t) + ",\"events\":[";
    for (size_t i = 0; i < dump.threads[t].size(); ++i) {
      const JournalRecord& r = dump.threads[t][i];
      if (i > 0) out += ",";
      char id_hex[20];
      std::snprintf(id_hex, sizeof(id_hex), "%016llx",
                    static_cast<unsigned long long>(r.request_id));
      out += "{\"ts_ns\":" + std::to_string(r.ts_ns) + ",\"request_id\":\"" +
             id_hex + "\",\"code\":\"" + JournalCodeName(r.code) +
             "\",\"arg\":" + std::to_string(r.arg) +
             ",\"seq\":" + std::to_string(r.seq) + "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

}  // namespace obs
}  // namespace xptc
