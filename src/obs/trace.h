#ifndef XPTC_OBS_TRACE_H_
#define XPTC_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace xptc {
namespace obs {

/// One node of a query trace: a named span with ordered integer attributes
/// (star rounds, bit-ops, node touches, …), free-form notes (dispatch
/// decisions, cache provenance), and child spans. Built single-threaded on
/// the evaluating thread; read after the trace scope closes.
struct TraceNode {
  std::string name;
  int64_t elapsed_ns = 0;  // 0 unless XPTC_OBS timed the span
  std::vector<std::pair<std::string, int64_t>> attrs;
  std::vector<std::string> notes;
  std::vector<std::unique_ptr<TraceNode>> children;

  /// Accumulates into an existing attr of this key, or appends one.
  void AddAttr(const std::string& key, int64_t delta);
  void SetAttr(const std::string& key, int64_t v);
  const int64_t* FindAttr(const std::string& key) const;
};

/// A per-query trace tree. Tracing is *opt-in per thread*: instrumentation
/// sites all over the engine call `QueryTrace::Current()` (one TLS load)
/// and do nothing when no trace is active, so the fuzzer's millions of
/// cases and the batch engine's steady state pay a predictable branch, not
/// an allocation. Activate with a `QueryTrace::Scope` around the query.
///
/// Not thread-safe: one QueryTrace records one thread's work. (The batch
/// engine's workers each see no active trace unless a worker opens its
/// own scope.)
class QueryTrace {
 public:
  QueryTrace();
  ~QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Activates `trace` on this thread for its lifetime (RAII, re-entrant:
  /// the previous active trace, if any, is restored on destruction).
  class Scope {
   public:
    explicit Scope(QueryTrace* trace);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceNode* saved_;
  };

  /// The node new spans attach to on this thread; nullptr → tracing off.
  static TraceNode* Current();
  static bool Active() { return Current() != nullptr; }

  const TraceNode& root() const { return root_; }
  TraceNode& root() { return root_; }

  /// JSON rendering of the tree. `with_times` includes elapsed_ns fields
  /// (excluded by default so golden outputs are deterministic).
  std::string ToJson(bool with_times = false) const;
  /// Indented human-readable rendering (the EXPLAIN trace section).
  std::string ToText(bool with_times = false) const;

 private:
  TraceNode root_;
};

/// RAII span: when a trace is active on this thread, appends a child node
/// under the current one and makes it current; otherwise records nothing.
/// Under XPTC_OBS the span is timed, and if a flame histogram is supplied
/// the elapsed nanoseconds are Observed into it on destruction *even when
/// no trace is active* — that is the flame-scoped timing path (evaluator,
/// compiled engine, batch tasks, all nine oracles).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* flame = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// No-ops when this span is not recording (no active trace).
  void Attr(const char* key, int64_t v);
  void AddAttr(const char* key, int64_t delta);
  void Note(std::string note);
  bool recording() const { return node_ != nullptr; }

 private:
  TraceNode* node_ = nullptr;   // the span's node, nullptr if not recording
  TraceNode* saved_ = nullptr;  // parent to restore as current
  Histogram* flame_ = nullptr;
#if XPTC_OBS
  int64_t start_ns_ = 0;
#endif
};

/// Accumulates `delta` into attribute `key` of the *current* trace node
/// (one TLS load + branch when tracing is off). For instrumentation sites
/// that are too hot or too far from the span object to hold a TraceSpan —
/// per-axis-kernel node touches, per-instruction execution counts.
void TraceAddCount(const char* key, int64_t delta);
/// Appends a note to the current trace node, if any.
void TraceNote(std::string note);

/// Monotonic clock in nanoseconds. Always available (the bench harness
/// uses it); XPTC_OBS only controls whether *span* destructors read it.
int64_t NowNs();

}  // namespace obs
}  // namespace xptc

#endif  // XPTC_OBS_TRACE_H_
