#ifndef XPTC_XPTC_H_
#define XPTC_XPTC_H_

/// \file
/// Umbrella header for xptc — a library implementing the systems studied in
/// ten Cate & Segoufin, "XPath, transitive closure logic, and nested tree
/// walking automata" (PODS 2008 / JACM 2010): Core/Regular XPath(W) engines,
/// FO with monadic transitive closure, tree-walking and nested tree-walking
/// automata, bottom-up (regular) tree automata, translations between the
/// formalisms, and bounded decision procedures. The workload layer adds
/// throughput machinery on top: a work-stealing thread pool, a parallel
/// corpus × queries batch engine, per-tree cross-query caches, and a
/// hash-consed plan cache.

#include "bta/bta.h"
#include "bta/languages.h"
#include "common/alphabet.h"
#include "common/bitset.h"
#include "common/check.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "compile/compile.h"
#include "compile/to_dfta.h"
#include "logic/fo.h"
#include "logic/fo_eval.h"
#include "logic/fo_parser.h"
#include "logic/xpath_to_fo.h"
#include "sat/axioms.h"
#include "sat/bounded.h"
#include "tree/enumerate.h"
#include "tree/generate.h"
#include "tree/tree.h"
#include "tree/xml.h"
#include "twa/brute.h"
#include "twa/trace.h"
#include "twa/twa.h"
#include "workload/batch.h"
#include "workload/plan_cache.h"
#include "workload/tree_cache.h"
#include "xpath/ast.h"
#include "xpath/intern.h"
#include "xpath/engine.h"
#include "xpath/eval.h"
#include "xpath/eval_naive.h"
#include "xpath/fragment.h"
#include "xpath/generator.h"
#include "xpath/parser.h"
#include "xpath/rewrite.h"

#endif  // XPTC_XPTC_H_
