#include "logic/fo.h"

#include <algorithm>

#include "common/check.h"

namespace xptc {

FormulaPtr FOLabel(Symbol label, Var x) {
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kLabel;
  f->label = label;
  f->v1 = x;
  return f;
}

FormulaPtr FOEq(Var x, Var y) {
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kEq;
  f->v1 = x;
  f->v2 = y;
  return f;
}

FormulaPtr FOChild(Var parent, Var child) {
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kChild;
  f->v1 = parent;
  f->v2 = child;
  return f;
}

FormulaPtr FONextSib(Var left_node, Var right_node) {
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kNextSib;
  f->v1 = left_node;
  f->v2 = right_node;
  return f;
}

FormulaPtr FONot(FormulaPtr arg) {
  XPTC_CHECK(arg != nullptr);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kNot;
  f->left = std::move(arg);
  return f;
}

FormulaPtr FOAnd(FormulaPtr left, FormulaPtr right) {
  XPTC_CHECK(left && right);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kAnd;
  f->left = std::move(left);
  f->right = std::move(right);
  return f;
}

FormulaPtr FOOr(FormulaPtr left, FormulaPtr right) {
  XPTC_CHECK(left && right);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kOr;
  f->left = std::move(left);
  f->right = std::move(right);
  return f;
}

FormulaPtr FOExists(Var bound, FormulaPtr body) {
  XPTC_CHECK(body != nullptr);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kExists;
  f->v1 = bound;
  f->left = std::move(body);
  return f;
}

FormulaPtr FOForall(Var bound, FormulaPtr body) {
  XPTC_CHECK(body != nullptr);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kForall;
  f->v1 = bound;
  f->left = std::move(body);
  return f;
}

FormulaPtr FOTC(Var tc_x, Var tc_y, FormulaPtr body, Var u, Var v) {
  XPTC_CHECK(body != nullptr);
  XPTC_CHECK_NE(tc_x, tc_y);
  auto f = std::make_shared<Formula>();
  f->op = FOOp::kTC;
  f->tc_x = tc_x;
  f->tc_y = tc_y;
  f->v1 = u;
  f->v2 = v;
  f->left = std::move(body);
  return f;
}

int FormulaSize(const Formula& formula) {
  int size = 1;
  if (formula.left != nullptr) size += FormulaSize(*formula.left);
  if (formula.right != nullptr) size += FormulaSize(*formula.right);
  return size;
}

int QuantifierRank(const Formula& formula) {
  int child_rank = 0;
  if (formula.left != nullptr) {
    child_rank = QuantifierRank(*formula.left);
  }
  if (formula.right != nullptr) {
    child_rank = std::max(child_rank, QuantifierRank(*formula.right));
  }
  switch (formula.op) {
    case FOOp::kExists:
    case FOOp::kForall:
    case FOOp::kTC:
      return 1 + child_rank;
    default:
      return child_rank;
  }
}

int CountTCOperators(const Formula& formula) {
  int count = formula.op == FOOp::kTC ? 1 : 0;
  if (formula.left != nullptr) count += CountTCOperators(*formula.left);
  if (formula.right != nullptr) count += CountTCOperators(*formula.right);
  return count;
}

namespace {
void CollectFreeVars(const Formula& formula, std::set<Var>* bound,
                     std::set<Var>* free) {
  auto add_if_free = [&](Var v) {
    if (v >= 0 && bound->count(v) == 0) free->insert(v);
  };
  switch (formula.op) {
    case FOOp::kLabel:
      add_if_free(formula.v1);
      return;
    case FOOp::kEq:
    case FOOp::kChild:
    case FOOp::kNextSib:
      add_if_free(formula.v1);
      add_if_free(formula.v2);
      return;
    case FOOp::kNot:
      CollectFreeVars(*formula.left, bound, free);
      return;
    case FOOp::kAnd:
    case FOOp::kOr:
      CollectFreeVars(*formula.left, bound, free);
      CollectFreeVars(*formula.right, bound, free);
      return;
    case FOOp::kExists:
    case FOOp::kForall: {
      const bool was_bound = bound->count(formula.v1) > 0;
      bound->insert(formula.v1);
      CollectFreeVars(*formula.left, bound, free);
      if (!was_bound) bound->erase(formula.v1);
      return;
    }
    case FOOp::kTC: {
      // The applied terms are free occurrences; the designated pair is
      // bound within the body.
      add_if_free(formula.v1);
      add_if_free(formula.v2);
      const bool x_was = bound->count(formula.tc_x) > 0;
      const bool y_was = bound->count(formula.tc_y) > 0;
      bound->insert(formula.tc_x);
      bound->insert(formula.tc_y);
      CollectFreeVars(*formula.left, bound, free);
      if (!x_was) bound->erase(formula.tc_x);
      if (!y_was) bound->erase(formula.tc_y);
      return;
    }
  }
}
}  // namespace

std::set<Var> FreeVars(const Formula& formula) {
  std::set<Var> bound;
  std::set<Var> free;
  CollectFreeVars(formula, &bound, &free);
  return free;
}

Var MaxVar(const Formula& formula) {
  Var max_var = std::max({formula.v1, formula.v2, formula.tc_x, formula.tc_y});
  if (formula.left != nullptr) {
    max_var = std::max(max_var, MaxVar(*formula.left));
  }
  if (formula.right != nullptr) {
    max_var = std::max(max_var, MaxVar(*formula.right));
  }
  return max_var;
}

namespace {
std::string V(Var v) { return "x" + std::to_string(v); }

void Print(const Formula& formula, const Alphabet& alphabet,
           std::string* out) {
  switch (formula.op) {
    case FOOp::kLabel:
      *out += alphabet.Name(formula.label) + "(" + V(formula.v1) + ")";
      return;
    case FOOp::kEq:
      *out += V(formula.v1) + "=" + V(formula.v2);
      return;
    case FOOp::kChild:
      *out += "Child(" + V(formula.v1) + "," + V(formula.v2) + ")";
      return;
    case FOOp::kNextSib:
      *out += "NextSib(" + V(formula.v1) + "," + V(formula.v2) + ")";
      return;
    case FOOp::kNot:
      *out += "!";
      Print(*formula.left, alphabet, out);
      return;
    case FOOp::kAnd:
      *out += "(";
      Print(*formula.left, alphabet, out);
      *out += " & ";
      Print(*formula.right, alphabet, out);
      *out += ")";
      return;
    case FOOp::kOr:
      *out += "(";
      Print(*formula.left, alphabet, out);
      *out += " | ";
      Print(*formula.right, alphabet, out);
      *out += ")";
      return;
    case FOOp::kExists:
      *out += "E" + V(formula.v1) + ".";
      Print(*formula.left, alphabet, out);
      return;
    case FOOp::kForall:
      *out += "A" + V(formula.v1) + ".";
      Print(*formula.left, alphabet, out);
      return;
    case FOOp::kTC:
      *out += "[TC_{" + V(formula.tc_x) + "," + V(formula.tc_y) + "} ";
      Print(*formula.left, alphabet, out);
      *out += "](" + V(formula.v1) + "," + V(formula.v2) + ")";
      return;
  }
}
}  // namespace

std::string FormulaToString(const Formula& formula, const Alphabet& alphabet) {
  std::string out;
  Print(formula, alphabet, &out);
  return out;
}

}  // namespace xptc
