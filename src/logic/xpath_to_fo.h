#ifndef XPTC_LOGIC_XPATH_TO_FO_H_
#define XPTC_LOGIC_XPATH_TO_FO_H_

#include "logic/fo.h"
#include "xpath/ast.h"

namespace xptc {

/// Compositional translation Regular XPath(W) → FO(MTC): the "easy"
/// inclusion of the paper's main equivalence (Theorem T1), implemented
/// constructively and validated by agreement tests.
///
/// The target signature is the minimal one `{Child, NextSibling, =, labels}`:
/// transitive axes become TC operators (descendant = TC(Child), ...), the
/// Kleene star becomes TC of the translated step relation, and `W φ`
/// becomes the *relativisation* of the translation of φ to the subtree of
/// the context variable (all quantifiers restricted to descendants-or-self,
/// TC bodies restricted on both endpoints).
class XPathToFOTranslator {
 public:
  /// Variables strictly below `first_fresh_var` are reserved for the caller
  /// (context variables of the produced formulas).
  explicit XPathToFOTranslator(Var first_fresh_var = 2)
      : next_var_(first_fresh_var) {}

  /// STx(path)(x, y): the translated binary relation.
  FormulaPtr TranslatePath(const PathExpr& path, Var x, Var y);

  /// φ(x): the translated unary predicate.
  FormulaPtr TranslateNode(const NodeExpr& node, Var x);

  /// Next unused variable index (for callers composing further).
  Var next_var() const { return next_var_; }

 private:
  Var Fresh() { return next_var_++; }

  /// descendant-or-self(root, v) as a formula.
  FormulaPtr DosFormula(Var root, Var v);

  /// Restricts every quantifier and TC body in `formula` to the subtree of
  /// `root` (which must not be bound inside `formula`).
  FormulaPtr Relativize(const FormulaPtr& formula, Var root);

  Var next_var_;
};

/// One-shot helpers. The returned formula's free variables are exactly the
/// given context variables (0/1 by convention).
FormulaPtr PathToFO(const PathExpr& path, Var x, Var y);
FormulaPtr NodeToFO(const NodeExpr& node, Var x);

}  // namespace xptc

#endif  // XPTC_LOGIC_XPATH_TO_FO_H_
