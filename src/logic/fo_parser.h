#ifndef XPTC_LOGIC_FO_PARSER_H_
#define XPTC_LOGIC_FO_PARSER_H_

#include <string>

#include "common/alphabet.h"
#include "common/result.h"
#include "logic/fo.h"

namespace xptc {

/// Parses the ASCII FO(MTC) syntax produced by `FormulaToString`
/// (round-trip safe):
///
///   formula := iff
///   iff     := implies ('<->' implies)*          (desugars to (a→b)∧(b→a))
///   implies := or ('->' or)*                     (right-assoc, ¬a ∨ b)
///   or      := and ('|' and)*
///   and     := unary ('&' unary)*
///   unary   := '!' unary | 'E' VAR '.' unary | 'A' VAR '.' unary | atom
///   atom    := VAR '=' VAR | VAR '!=' VAR
///            | 'Child' '(' VAR ',' VAR ')' | 'NextSib' '(' VAR ',' VAR ')'
///            | LABEL '(' VAR ')'
///            | '[' 'TC_' '{' VAR ',' VAR '}' formula ']' '(' VAR ',' VAR ')'
///            | '(' formula ')'
///   VAR     := 'x' DIGITS
///
/// Label names are identifiers other than the reserved `Child`/`NextSib`;
/// they are interned into `*alphabet`. `a != b` desugars to `!(a = b)` and
/// implication/biimplication desugar to ¬/∨/∧, so round-tripping a parsed
/// formula through `FormulaToString` re-parses to a structurally equal one.
Result<FormulaPtr> ParseFormula(const std::string& text, Alphabet* alphabet);

}  // namespace xptc

#endif  // XPTC_LOGIC_FO_PARSER_H_
