#include "logic/fo_parser.h"

#include <cctype>
#include <vector>

namespace xptc {

namespace {

enum class TokKind {
  kIdent,   // variable, label, quantifier prefix, Child, NextSib, TC_
  kLParen,
  kRParen,
  kLBrack,
  kRBrack,
  kLBrace,
  kRBrace,
  kComma,
  kDot,
  kEq,
  kNeq,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kEnd,
};

struct Tok {
  TokKind kind;
  std::string text;
  size_t offset;
};

Status TokenizeFormula(const std::string& text, std::vector<Tok>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    const size_t start = pos;
    auto push = [&](TokKind kind, size_t length) {
      out->push_back({kind, text.substr(start, length), start});
      pos += length;
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      push(TokKind::kIdent, end - pos);
      continue;
    }
    switch (c) {
      case '(':
        push(TokKind::kLParen, 1);
        break;
      case ')':
        push(TokKind::kRParen, 1);
        break;
      case '[':
        push(TokKind::kLBrack, 1);
        break;
      case ']':
        push(TokKind::kRBrack, 1);
        break;
      case '{':
        push(TokKind::kLBrace, 1);
        break;
      case '}':
        push(TokKind::kRBrace, 1);
        break;
      case ',':
        push(TokKind::kComma, 1);
        break;
      case '.':
        push(TokKind::kDot, 1);
        break;
      case '=':
        push(TokKind::kEq, 1);
        break;
      case '&':
        push(TokKind::kAnd, 1);
        break;
      case '|':
        push(TokKind::kOr, 1);
        break;
      case '!':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          push(TokKind::kNeq, 2);
        } else {
          push(TokKind::kNot, 1);
        }
        break;
      case '-':
        if (pos + 1 < text.size() && text[pos + 1] == '>') {
          push(TokKind::kImplies, 2);
        } else {
          return Status::InvalidArgument("stray '-' at offset " +
                                         std::to_string(pos));
        }
        break;
      case '<':
        if (pos + 2 < text.size() && text[pos + 1] == '-' &&
            text[pos + 2] == '>') {
          push(TokKind::kIff, 3);
        } else {
          return Status::InvalidArgument("stray '<' at offset " +
                                         std::to_string(pos));
        }
        break;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(pos));
    }
  }
  out->push_back({TokKind::kEnd, "", text.size()});
  return Status::OK();
}

// "x<digits>" → variable index, or -1.
Var ParseVarName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'x') return -1;
  Var value = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return -1;
    value = value * 10 + (name[i] - '0');
  }
  return value;
}

class FOParser {
 public:
  FOParser(std::vector<Tok> tokens, Alphabet* alphabet)
      : tokens_(std::move(tokens)), alphabet_(alphabet) {}

  Result<FormulaPtr> Parse() {
    XPTC_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
    if (!Check(TokKind::kEnd)) return Error("trailing input");
    return f;
  }

 private:
  const Tok& Peek() const { return tokens_[index_]; }
  const Tok& Advance() { return tokens_[index_++]; }
  bool Check(TokKind kind) const { return Peek().kind == kind; }
  bool Match(TokKind kind) {
    if (Check(kind)) {
      ++index_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset));
  }

  Result<Var> ExpectVar() {
    if (!Check(TokKind::kIdent)) return Error("expected variable");
    const Var v = ParseVarName(Peek().text);
    if (v < 0) return Error("expected variable like x0, got " + Peek().text);
    Advance();
    return v;
  }

  // Depth/size bounds mirroring xpath/parser.cc: recursive descent plus
  // recursive formula destructors mean unbounded input is unbounded stack.
  static constexpr int kMaxNestingDepth = 200;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };
  Status CheckDepth() const {
    if (depth_ > kMaxNestingDepth) {
      return Error("formula nesting too deep (limit " +
                   std::to_string(kMaxNestingDepth) + ")");
    }
    return Status::OK();
  }

  Result<FormulaPtr> ParseIff() {
    DepthGuard guard(&depth_);
    XPTC_RETURN_NOT_OK(CheckDepth());
    XPTC_ASSIGN_OR_RETURN(FormulaPtr left, ParseImplies());
    while (Match(TokKind::kIff)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());
      left = FOAnd(FOOr(FONot(left), right), FOOr(FONot(right), left));
    }
    return left;
  }

  Result<FormulaPtr> ParseImplies() {
    XPTC_ASSIGN_OR_RETURN(FormulaPtr left, ParseOr());
    if (Match(TokKind::kImplies)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());  // right-assoc
      return FOOr(FONot(std::move(left)), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseOr() {
    XPTC_ASSIGN_OR_RETURN(FormulaPtr left, ParseAnd());
    while (Match(TokKind::kOr)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr right, ParseAnd());
      left = FOOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseAnd() {
    XPTC_ASSIGN_OR_RETURN(FormulaPtr left, ParseUnary());
    while (Match(TokKind::kAnd)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr right, ParseUnary());
      left = FOAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<FormulaPtr> ParseUnary() {
    DepthGuard guard(&depth_);
    XPTC_RETURN_NOT_OK(CheckDepth());
    if (Match(TokKind::kNot)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr arg, ParseUnary());
      return FONot(std::move(arg));
    }
    // Quantifiers: "Ex3." / "Ax3." — an ident of that shape followed by '.'.
    if (Check(TokKind::kIdent) &&
        (Peek().text[0] == 'E' || Peek().text[0] == 'A') &&
        ParseVarName(Peek().text.substr(1)) >= 0 &&
        tokens_[index_ + 1].kind == TokKind::kDot) {
      const bool exists = Peek().text[0] == 'E';
      const Var bound = ParseVarName(Advance().text.substr(1));
      Advance();  // '.'
      XPTC_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
      return exists ? FOExists(bound, std::move(body))
                    : FOForall(bound, std::move(body));
    }
    return ParseAtom();
  }

  Result<FormulaPtr> ParseAtom() {
    if (Match(TokKind::kLParen)) {
      XPTC_ASSIGN_OR_RETURN(FormulaPtr inner, ParseIff());
      if (!Match(TokKind::kRParen)) return Error("expected ')'");
      return inner;
    }
    if (Match(TokKind::kLBrack)) {
      // [TC_{xa,xb} body](xu,xv)
      if (!Check(TokKind::kIdent) || Peek().text != "TC_") {
        return Error("expected TC_ after '['");
      }
      Advance();
      if (!Match(TokKind::kLBrace)) return Error("expected '{'");
      XPTC_ASSIGN_OR_RETURN(Var tc_x, ExpectVar());
      if (!Match(TokKind::kComma)) return Error("expected ','");
      XPTC_ASSIGN_OR_RETURN(Var tc_y, ExpectVar());
      if (!Match(TokKind::kRBrace)) return Error("expected '}'");
      XPTC_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
      if (!Match(TokKind::kRBrack)) return Error("expected ']'");
      if (!Match(TokKind::kLParen)) return Error("expected '(' after TC");
      XPTC_ASSIGN_OR_RETURN(Var u, ExpectVar());
      if (!Match(TokKind::kComma)) return Error("expected ','");
      XPTC_ASSIGN_OR_RETURN(Var v, ExpectVar());
      if (!Match(TokKind::kRParen)) return Error("expected ')'");
      if (tc_x == tc_y) return Error("TC variables must be distinct");
      return FOTC(tc_x, tc_y, std::move(body), u, v);
    }
    if (!Check(TokKind::kIdent)) return Error("expected atom");
    const std::string head = Advance().text;
    const Var as_var = ParseVarName(head);
    if (as_var >= 0) {
      // Equality or inequality.
      if (Match(TokKind::kEq)) {
        XPTC_ASSIGN_OR_RETURN(Var other, ExpectVar());
        return FOEq(as_var, other);
      }
      if (Match(TokKind::kNeq)) {
        XPTC_ASSIGN_OR_RETURN(Var other, ExpectVar());
        return FONot(FOEq(as_var, other));
      }
      return Error("expected '=' or '!=' after variable");
    }
    // Relation or label atom: head(args).
    if (!Match(TokKind::kLParen)) {
      return Error("expected '(' after '" + head + "'");
    }
    XPTC_ASSIGN_OR_RETURN(Var first, ExpectVar());
    if (head == "Child" || head == "NextSib") {
      if (!Match(TokKind::kComma)) return Error("expected ','");
      XPTC_ASSIGN_OR_RETURN(Var second, ExpectVar());
      if (!Match(TokKind::kRParen)) return Error("expected ')'");
      return head == "Child" ? FOChild(first, second)
                             : FONextSib(first, second);
    }
    if (!Match(TokKind::kRParen)) {
      return Error("expected ')' after label atom");
    }
    return FOLabel(alphabet_->Intern(head), first);
  }

  std::vector<Tok> tokens_;
  Alphabet* alphabet_;
  size_t index_ = 0;
  mutable int depth_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(const std::string& text, Alphabet* alphabet) {
  std::vector<Tok> tokens;
  XPTC_RETURN_NOT_OK(TokenizeFormula(text, &tokens));
  // Flat-chain counterpart of the nesting bound: a huge conjunction chain
  // builds a left-deep formula whose recursive destructor would otherwise
  // exhaust the stack.
  constexpr size_t kMaxTokens = 20000;
  if (tokens.size() > kMaxTokens) {
    return Status::InvalidArgument(
        "formula too large (" + std::to_string(tokens.size()) +
        " tokens; limit " + std::to_string(kMaxTokens) + ")");
  }
  FOParser parser(std::move(tokens), alphabet);
  return parser.Parse();
}

}  // namespace xptc
