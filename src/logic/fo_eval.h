#ifndef XPTC_LOGIC_FO_EVAL_H_
#define XPTC_LOGIC_FO_EVAL_H_

#include <vector>

#include "common/bitset.h"
#include "logic/fo.h"
#include "tree/tree.h"

namespace xptc {

/// Variable assignment: env[var] is the node assigned to `var`, or kNoNode
/// if unassigned. Sized to at least MaxVar(formula) + 1 by the caller (the
/// helpers below take care of it).
using FOAssignment = std::vector<NodeId>;

/// Naive model checking of FO(MTC) over a tree: direct recursion on the
/// formula, O(n) per quantifier level and O(n²) edge evaluations per TC
/// (closure computed by BFS with lazily evaluated edges). Exponential in
/// quantifier rank in the worst case — this is the *logic side* reference
/// implementation, used for translation validation and the complexity-shape
/// experiment (E4); the XPath engine is the efficient path.
bool EvalFormula(const Tree& tree, const Formula& formula,
                 const FOAssignment& env);

/// Evaluates a formula with exactly one free variable `free_var`: the set of
/// nodes satisfying φ(x).
Bitset EvalFormulaUnary(const Tree& tree, const Formula& formula,
                        Var free_var);

/// Evaluates a formula with two free variables as an explicit relation.
BitMatrix EvalFormulaBinary(const Tree& tree, const Formula& formula, Var x,
                            Var y);

/// Evaluates a sentence (no free variables).
bool EvalSentence(const Tree& tree, const Formula& formula);

}  // namespace xptc

#endif  // XPTC_LOGIC_FO_EVAL_H_
