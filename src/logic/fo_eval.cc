#include "logic/fo_eval.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace xptc {

namespace {

NodeId Lookup(const FOAssignment& env, Var v) {
  XPTC_CHECK_GE(v, 0);
  XPTC_CHECK_LT(static_cast<size_t>(v), env.size());
  const NodeId node = env[static_cast<size_t>(v)];
  XPTC_CHECK_NE(node, kNoNode) << "unassigned variable x" << v;
  return node;
}

bool Eval(const Tree& tree, const Formula& formula, FOAssignment* env) {
  switch (formula.op) {
    case FOOp::kLabel:
      return tree.Label(Lookup(*env, formula.v1)) == formula.label;
    case FOOp::kEq:
      return Lookup(*env, formula.v1) == Lookup(*env, formula.v2);
    case FOOp::kChild:
      return tree.Parent(Lookup(*env, formula.v2)) ==
             Lookup(*env, formula.v1);
    case FOOp::kNextSib:
      return tree.NextSibling(Lookup(*env, formula.v1)) ==
             Lookup(*env, formula.v2);
    case FOOp::kNot:
      return !Eval(tree, *formula.left, env);
    case FOOp::kAnd:
      return Eval(tree, *formula.left, env) &&
             Eval(tree, *formula.right, env);
    case FOOp::kOr:
      return Eval(tree, *formula.left, env) ||
             Eval(tree, *formula.right, env);
    case FOOp::kExists: {
      const size_t slot = static_cast<size_t>(formula.v1);
      const NodeId saved = (*env)[slot];
      for (NodeId v = 0; v < tree.size(); ++v) {
        (*env)[slot] = v;
        if (Eval(tree, *formula.left, env)) {
          (*env)[slot] = saved;
          return true;
        }
      }
      (*env)[slot] = saved;
      return false;
    }
    case FOOp::kForall: {
      const size_t slot = static_cast<size_t>(formula.v1);
      const NodeId saved = (*env)[slot];
      for (NodeId v = 0; v < tree.size(); ++v) {
        (*env)[slot] = v;
        if (!Eval(tree, *formula.left, env)) {
          (*env)[slot] = saved;
          return false;
        }
      }
      (*env)[slot] = saved;
      return true;
    }
    case FOOp::kTC: {
      // BFS from the source term; edges of the closed relation are
      // evaluated lazily under the current parameter assignment.
      const NodeId source = Lookup(*env, formula.v1);
      const NodeId target = Lookup(*env, formula.v2);
      const size_t sx = static_cast<size_t>(formula.tc_x);
      const size_t sy = static_cast<size_t>(formula.tc_y);
      const NodeId saved_x = (*env)[sx];
      const NodeId saved_y = (*env)[sy];
      std::vector<bool> visited(static_cast<size_t>(tree.size()), false);
      std::deque<NodeId> queue;
      bool found = false;
      // Strict closure: the target must be reached by >= 1 step, so the
      // source is expanded but only enqueued nodes count as reached.
      queue.push_back(source);
      std::vector<bool> expanded(static_cast<size_t>(tree.size()), false);
      while (!queue.empty() && !found) {
        const NodeId current = queue.front();
        queue.pop_front();
        if (expanded[static_cast<size_t>(current)]) continue;
        expanded[static_cast<size_t>(current)] = true;
        (*env)[sx] = current;
        for (NodeId next = 0; next < tree.size() && !found; ++next) {
          if (visited[static_cast<size_t>(next)]) continue;
          (*env)[sy] = next;
          if (Eval(tree, *formula.left, env)) {
            visited[static_cast<size_t>(next)] = true;
            if (next == target) {
              found = true;
            } else {
              queue.push_back(next);
            }
          }
        }
      }
      (*env)[sx] = saved_x;
      (*env)[sy] = saved_y;
      return found;
    }
  }
  XPTC_CHECK(false) << "bad FO op";
  return false;
}

}  // namespace

bool EvalFormula(const Tree& tree, const Formula& formula,
                 const FOAssignment& env) {
  FOAssignment working = env;
  const Var max_var = MaxVar(formula);
  if (static_cast<Var>(working.size()) <= max_var) {
    working.resize(static_cast<size_t>(max_var) + 1, kNoNode);
  }
  return Eval(tree, formula, &working);
}

Bitset EvalFormulaUnary(const Tree& tree, const Formula& formula,
                        Var free_var) {
  Bitset out(tree.size());
  FOAssignment env(static_cast<size_t>(std::max(MaxVar(formula), free_var)) +
                       1,
                   kNoNode);
  for (NodeId v = 0; v < tree.size(); ++v) {
    env[static_cast<size_t>(free_var)] = v;
    if (Eval(tree, formula, &env)) out.Set(v);
  }
  return out;
}

BitMatrix EvalFormulaBinary(const Tree& tree, const Formula& formula, Var x,
                            Var y) {
  BitMatrix out(tree.size());
  FOAssignment env(
      static_cast<size_t>(std::max({MaxVar(formula), x, y})) + 1, kNoNode);
  for (NodeId i = 0; i < tree.size(); ++i) {
    env[static_cast<size_t>(x)] = i;
    for (NodeId j = 0; j < tree.size(); ++j) {
      env[static_cast<size_t>(y)] = j;
      if (Eval(tree, formula, &env)) out.Set(i, j);
    }
  }
  return out;
}

bool EvalSentence(const Tree& tree, const Formula& formula) {
  FOAssignment env(static_cast<size_t>(MaxVar(formula)) + 1, kNoNode);
  return Eval(tree, formula, &env);
}

}  // namespace xptc
