#ifndef XPTC_LOGIC_FO_H_
#define XPTC_LOGIC_FO_H_

#include <memory>
#include <set>
#include <string>

#include "common/alphabet.h"

namespace xptc {

/// First-order variable, a small dense integer. Translators allocate fresh
/// variables from a counter; printers render them "x0", "x1", ...
using Var = int;

/// Connectives and atoms of FO(MTC) — first-order logic with *monadic*
/// transitive closure — over the tree signature
/// `{Child, NextSibling, =, (P_label)_label}`. This is the logic `FO*` of
/// the paper: the TC operator applies to definable binary relations
/// `φ(x, y)` (parameters allowed) and is the *strict* (≥ 1 step) closure.
enum class FOOp {
  kLabel,    // P_label(v1)
  kEq,       // v1 = v2
  kChild,    // Child(v1, v2)
  kNextSib,  // NextSib(v1, v2)
  kNot,      // ¬ left
  kAnd,      // left ∧ right
  kOr,       // left ∨ right
  kExists,   // ∃ v1 . left
  kForall,   // ∀ v1 . left
  kTC,       // [TC_{tc_x, tc_y} left](v1, v2)
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable FO(MTC) formula node.
struct Formula {
  FOOp op;
  Var v1 = -1;  // atom argument / bound variable / TC source term
  Var v2 = -1;  // atom argument / TC target term
  Var tc_x = -1;  // kTC: designated variable pair of the closed relation
  Var tc_y = -1;
  Symbol label = kInvalidSymbol;  // kLabel
  FormulaPtr left;
  FormulaPtr right;
};

FormulaPtr FOLabel(Symbol label, Var x);
FormulaPtr FOEq(Var x, Var y);
FormulaPtr FOChild(Var parent, Var child);
FormulaPtr FONextSib(Var left_node, Var right_node);
FormulaPtr FONot(FormulaPtr arg);
FormulaPtr FOAnd(FormulaPtr left, FormulaPtr right);
FormulaPtr FOOr(FormulaPtr left, FormulaPtr right);
FormulaPtr FOExists(Var bound, FormulaPtr body);
FormulaPtr FOForall(Var bound, FormulaPtr body);

/// [TC_{x,y} body](u, v): u and v are connected by a chain of ≥ 1 body-steps.
FormulaPtr FOTC(Var tc_x, Var tc_y, FormulaPtr body, Var u, Var v);

/// Number of formula nodes.
int FormulaSize(const Formula& formula);

/// Maximum nesting depth of quantifiers and TC operators combined (the
/// parameter that drives naive model-checking cost).
int QuantifierRank(const Formula& formula);

/// Number of TC operators in the formula.
int CountTCOperators(const Formula& formula);

/// Free variables of the formula.
std::set<Var> FreeVars(const Formula& formula);

/// Largest variable index mentioned anywhere (bound or free); -1 if none.
Var MaxVar(const Formula& formula);

/// Human-readable rendering, e.g. "∃x1 (Child(x0,x1) ∧ P_a(x1))" in ASCII:
/// "Ex1 (Child(x0,x1) & a(x1))".
std::string FormulaToString(const Formula& formula, const Alphabet& alphabet);

}  // namespace xptc

#endif  // XPTC_LOGIC_FO_H_
