#include "logic/xpath_to_fo.h"

#include "common/check.h"

namespace xptc {

namespace {

// Strict-TC helper: [TC_{a,b} step(a,b)](u, v) with fresh a, b supplied by
// the caller.
FormulaPtr StrictTC(Var a, Var b, FormulaPtr step, Var u, Var v) {
  return FOTC(a, b, std::move(step), u, v);
}

}  // namespace

FormulaPtr XPathToFOTranslator::DosFormula(Var root, Var v) {
  const Var a = Fresh();
  const Var b = Fresh();
  return FOOr(FOEq(root, v),
              StrictTC(a, b, FOChild(a, b), root, v));
}

FormulaPtr XPathToFOTranslator::TranslatePath(const PathExpr& path, Var x,
                                              Var y) {
  switch (path.op) {
    case PathOp::kAxis:
      switch (path.axis) {
        case Axis::kSelf:
          return FOEq(x, y);
        case Axis::kChild:
          return FOChild(x, y);
        case Axis::kParent:
          return FOChild(y, x);
        case Axis::kDescendant: {
          const Var a = Fresh();
          const Var b = Fresh();
          return StrictTC(a, b, FOChild(a, b), x, y);
        }
        case Axis::kAncestor: {
          const Var a = Fresh();
          const Var b = Fresh();
          return StrictTC(a, b, FOChild(a, b), y, x);
        }
        case Axis::kDescendantOrSelf:
          return DosFormula(x, y);
        case Axis::kAncestorOrSelf:
          return DosFormula(y, x);
        case Axis::kNextSibling:
          return FONextSib(x, y);
        case Axis::kPrevSibling:
          return FONextSib(y, x);
        case Axis::kFollowingSibling: {
          const Var a = Fresh();
          const Var b = Fresh();
          return StrictTC(a, b, FONextSib(a, b), x, y);
        }
        case Axis::kPrecedingSibling: {
          const Var a = Fresh();
          const Var b = Fresh();
          return StrictTC(a, b, FONextSib(a, b), y, x);
        }
        case Axis::kFollowing: {
          // following = aos / fsib / dos.
          const Var z = Fresh();
          const Var w = Fresh();
          FormulaPtr aos = DosFormula(z, x);  // z ancestor-or-self of x
          const Var a = Fresh();
          const Var b = Fresh();
          FormulaPtr fsib = StrictTC(a, b, FONextSib(a, b), z, w);
          FormulaPtr dos = DosFormula(w, y);
          return FOExists(
              z, FOExists(w, FOAnd(std::move(aos),
                                   FOAnd(std::move(fsib), std::move(dos)))));
        }
        case Axis::kPreceding: {
          const Var z = Fresh();
          const Var w = Fresh();
          FormulaPtr aos = DosFormula(z, x);
          const Var a = Fresh();
          const Var b = Fresh();
          FormulaPtr psib = StrictTC(a, b, FONextSib(a, b), w, z);
          FormulaPtr dos = DosFormula(w, y);
          return FOExists(
              z, FOExists(w, FOAnd(std::move(aos),
                                   FOAnd(std::move(psib), std::move(dos)))));
        }
      }
      XPTC_CHECK(false) << "bad axis";
      return nullptr;
    case PathOp::kSeq: {
      const Var z = Fresh();
      FormulaPtr left = TranslatePath(*path.left, x, z);
      FormulaPtr right = TranslatePath(*path.right, z, y);
      return FOExists(z, FOAnd(std::move(left), std::move(right)));
    }
    case PathOp::kUnion:
      return FOOr(TranslatePath(*path.left, x, y),
                  TranslatePath(*path.right, x, y));
    case PathOp::kFilter:
      return FOAnd(TranslatePath(*path.left, x, y),
                   TranslateNode(*path.pred, y));
    case PathOp::kStar: {
      // p* = (x = y) ∨ TC_{a,b}[STx(p)(a,b)](x, y) — the paper's
      // correspondence between path stars and monadic TC.
      const Var a = Fresh();
      const Var b = Fresh();
      FormulaPtr step = TranslatePath(*path.left, a, b);
      return FOOr(FOEq(x, y), StrictTC(a, b, std::move(step), x, y));
    }
  }
  XPTC_CHECK(false) << "bad path op";
  return nullptr;
}

FormulaPtr XPathToFOTranslator::TranslateNode(const NodeExpr& node, Var x) {
  switch (node.op) {
    case NodeOp::kLabel:
      return FOLabel(node.label, x);
    case NodeOp::kTrue:
      return FOEq(x, x);
    case NodeOp::kNot:
      return FONot(TranslateNode(*node.left, x));
    case NodeOp::kAnd:
      return FOAnd(TranslateNode(*node.left, x),
                   TranslateNode(*node.right, x));
    case NodeOp::kOr:
      return FOOr(TranslateNode(*node.left, x),
                  TranslateNode(*node.right, x));
    case NodeOp::kSome: {
      const Var y = Fresh();
      return FOExists(y, TranslatePath(*node.path, x, y));
    }
    case NodeOp::kWithin:
      // W φ at x: φ holds at x in T|x — translate φ, then restrict all
      // navigation to the subtree of x.
      return Relativize(TranslateNode(*node.left, x), x);
  }
  XPTC_CHECK(false) << "bad node op";
  return nullptr;
}

FormulaPtr XPathToFOTranslator::Relativize(const FormulaPtr& formula,
                                           Var root) {
  switch (formula->op) {
    case FOOp::kLabel:
    case FOOp::kEq:
    case FOOp::kChild:
    case FOOp::kNextSib:
      // Atoms over nodes already inside the subtree are unchanged; a Child
      // or NextSib edge between subtree nodes is the same edge in T|root
      // (the root itself has no parent/siblings *inside* the subtree, which
      // is enforced by the quantifier restrictions below — and by the fact
      // that any free variable of the original formula is `root` itself).
      return formula;
    case FOOp::kNot:
      return FONot(Relativize(formula->left, root));
    case FOOp::kAnd:
      return FOAnd(Relativize(formula->left, root),
                   Relativize(formula->right, root));
    case FOOp::kOr:
      return FOOr(Relativize(formula->left, root),
                  Relativize(formula->right, root));
    case FOOp::kExists:
      return FOExists(formula->v1,
                      FOAnd(DosFormula(root, formula->v1),
                            Relativize(formula->left, root)));
    case FOOp::kForall:
      return FOForall(formula->v1,
                      FOOr(FONot(DosFormula(root, formula->v1)),
                           Relativize(formula->left, root)));
    case FOOp::kTC: {
      // Restrict both endpoints of every step of the closed relation.
      FormulaPtr body = Relativize(formula->left, root);
      body = FOAnd(DosFormula(root, formula->tc_x),
                   FOAnd(DosFormula(root, formula->tc_y), std::move(body)));
      return FOTC(formula->tc_x, formula->tc_y, std::move(body), formula->v1,
                  formula->v2);
    }
  }
  XPTC_CHECK(false) << "bad FO op";
  return nullptr;
}

FormulaPtr PathToFO(const PathExpr& path, Var x, Var y) {
  XPathToFOTranslator translator(/*first_fresh_var=*/2);
  return translator.TranslatePath(path, x, y);
}

FormulaPtr NodeToFO(const NodeExpr& node, Var x) {
  XPathToFOTranslator translator(/*first_fresh_var=*/1);
  return translator.TranslateNode(node, x);
}

}  // namespace xptc
