// E2 — Core XPath evaluation is linear-time in |T| (Gottlob–Koch–Pichler,
// cited as the baseline complexity in the paper); the naive relational
// semantics is cubic.
//
// Shape to observe: ns/node roughly flat for the set-based evaluator as n
// grows; the naive evaluator's per-node cost grows superlinearly until it
// is unusable.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "bench_util.h"
#include "xpath/eval.h"
#include "xpath/eval_naive.h"
#include "xpath/eval_seed.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

// The queries deliberately contain path compositions, so the naive
// evaluator pays full relation-composition cost (its Θ(n³) term).
const char* kQueries[] = {
    "<desc[a]/foll[b]>",
    "<child[a]/desc[b]/anc[c]>",
    "not <anc/desc[a]> and <dos[b]>",
};

void ScalingReport() {
  std::printf("\nPer-node evaluation cost (3 Core XPath queries, uniform "
              "random trees):\n");
  bench::PrintRow({"n", "set ns/node", "naive ns/node", "naive/set"});
  Alphabet alphabet;
  std::vector<NodePtr> queries;
  for (const char* text : kQueries) {
    queries.push_back(ParseNode(text, &alphabet).ValueOrDie());
  }
  std::vector<int> sizes = {64, 256, 1024, 4096, 16384};
  if (bench::SmokeMode()) sizes = {64, 256};
  for (int n : sizes) {
    const Tree tree = bench::BenchTree(&alphabet, n,
                                       TreeShape::kUniformRecursive, 5);
    const double set_seconds = bench::MedianSeconds([&] {
      for (const auto& query : queries) EvalNodeSet(tree, *query);
    });
    double naive_seconds = -1;
    if (n <= 1024) {
      naive_seconds = bench::MedianSeconds([&] {
        for (const auto& query : queries) EvalNodeNaive(tree, *query);
      });
    }
    const double set_ns = set_seconds / 3 / n * 1e9;
    const double naive_ns = naive_seconds < 0 ? -1 : naive_seconds / 3 / n * 1e9;
    bench::PrintRow({std::to_string(n), bench::Fmt(set_ns, 1),
                     naive_ns < 0 ? "(skipped)" : bench::Fmt(naive_ns, 1),
                     naive_ns < 0 ? "-" : bench::Fmt(naive_ns / set_ns, 1)});
  }
  std::printf("Expected shape: flat set-evaluator column (linear combined "
              "complexity); the naive per-node cost and the naive/set ratio "
              "grow with n (superlinear total), until naive is unusable.\n");
}

// Seed-engine-vs-optimized-engine speedups on W-heavy workloads. The seed
// engine (`SeedEvaluator`, the pre-kernel evaluator retained verbatim) and
// the optimized engine run in the same process on the same tree; results
// are checked bit-for-bit and appended to BENCH_eval.json.
void SpeedupReport() {
  const bool smoke = bench::SmokeMode();
  const int n = smoke ? 2000 : 50000;
  std::printf("\nSeed engine vs optimized engine, W-heavy queries "
              "(uniform random tree, n = %d):\n", n);
  bench::PrintRow({"case", "seed ms", "opt ms", "speedup", "match"});
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 7);
  const std::pair<const char*, const char*> w_cases[] = {
      {"w_desc", "W(<desc[b]>)"},
      {"w_nested", "W(<desc[b and W(<child[a]>)]>)"},
  };
  std::vector<bench::SpeedupCase> cases;
  for (const auto& [name, text] : w_cases) {
    NodePtr query = ParseNode(text, &alphabet).ValueOrDie();
    bench::SpeedupCase result;
    result.name = name;
    result.query = text;
    result.n = n;
    Bitset opt_bits(0), seed_bits(0);
    result.opt_seconds =
        bench::MedianSeconds([&] { opt_bits = EvalNodeSet(tree, *query); });
    // The seed engine is orders of magnitude slower here; one rep suffices.
    result.seed_seconds = bench::MedianSeconds(
        [&] { seed_bits = SeedEvalNodeSet(tree, *query); }, 1);
    result.match = opt_bits == seed_bits;
    cases.push_back(result);
    bench::PrintRow({result.name, bench::Fmt(result.seed_seconds * 1e3, 2),
                     bench::Fmt(result.opt_seconds * 1e3, 3),
                     bench::Fmt(result.seed_seconds / result.opt_seconds, 1),
                     result.match ? "yes" : "MISMATCH"});
    if (!result.match) {
      std::fprintf(stderr, "FATAL: engines disagree on %s\n", text);
      std::exit(1);
    }
  }
  bench::UpdateBenchJson(bench::BenchJsonPath(), "exp2_eval_scaling",
                         bench::SpeedupCasesJson(cases));
  std::printf("(recorded in %s)\n", bench::BenchJsonPath().c_str());
}

void BM_SetEval(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = ParseNode(kQueries[0], &alphabet).ValueOrDie();
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SetEval)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_NaiveEval(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = ParseNode(kQueries[0], &alphabet).ValueOrDie();
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeNaive(tree, *query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveEval)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_SetEvalByShape(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = ParseNode(kQueries[1], &alphabet).ValueOrDie();
  const Tree tree =
      bench::BenchTree(&alphabet, 4096,
                       static_cast<TreeShape>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
}
BENCHMARK(BM_SetEvalByShape)
    ->Arg(static_cast<int>(TreeShape::kUniformRecursive))
    ->Arg(static_cast<int>(TreeShape::kChain))
    ->Arg(static_cast<int>(TreeShape::kStar))
    ->Arg(static_cast<int>(TreeShape::kFullBinary));

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E2: evaluation complexity of Core XPath",
      "Core XPath evaluates in O(|Q| * |T|) combined complexity [T2]; the "
      "naive relational semantics is Theta(|T|^3)",
      "fixed query set, trees n = 64..16384, per-node cost for the "
      "set-based evaluator vs. the naive reference evaluator");
  xptc::ScalingReport();
  xptc::SpeedupReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
