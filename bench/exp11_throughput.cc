// E11 — Throughput layer: work-stealing BatchEngine, hash-consed PlanCache,
// and per-tree cross-query memoisation (TreeCache).
//
// Unlike E2–E9 this experiment measures no claim from the paper; it
// measures the serving layer built on top of the paper's evaluator. Three
// numbers matter:
//   1. batch queries/sec vs. worker count (cold caches vs. warm caches);
//   2. warm PlanCache parse throughput vs. cold Query::Parse;
//   3. a hard bit-for-bit match between BatchEngine results and a
//      sequential Query::Select loop (the bench exits non-zero on any
//      mismatch — it doubles as an integration check).
//
// Scaling caveat recorded in the JSON: speedup-vs-workers is only
// observable when the host actually has cores; "hw_threads" states what
// this run had. Warm-vs-cold cache effects are visible on any host.
//
// JSON section schema ("exp11_throughput" in BENCH_throughput.json):
//   {"smoke": bool, "hw_threads": int, "trees": int, "queries": int,
//    "nodes_per_tree": int,
//    "parse": {"cold_us": f, "warm_us": f, "speedup": f},
//    "plan_cache": {"hits": int, "misses": int, "evictions": int,
//                   "program_hits": int, "program_misses": int,
//                   "lowering_ms": f},
//    "workers": [{"workers": int, "cold_qps": f, "warm_qps": f,
//                 "warm_speedup_vs_1": f}, ...],
//    "match": bool}

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "workload/batch.h"
#include "workload/plan_cache.h"
#include "xpath/engine.h"

namespace xptc {
namespace {

// A serving-style workload: duplicate texts (plan-cache hits), shared W
// bodies across distinct queries (TreeCache + interner hits), and a spread
// of cheap label tests next to W-heavy queries (uneven task costs, which
// is what work stealing is for). The surviving W bodies use non-downward
// axes (foll/right) so `W φ ≡ φ` cannot rewrite them away; a few downward
// Ws are kept to exercise the dialect-shrinking rewrite too.
const char* kWorkload[] = {
    "<child[a]>",
    "<desc[b]>",
    "<desc[a]/foll[b]>",
    "<child[a]/desc[b]/anc[c]>",
    "not <anc/desc[a]> and <dos[b]>",
    "W(<desc[a]/foll[b]>)",
    "W(<desc[a]/foll[b]>)",  // duplicate text: the plan-cache hit path
    "W(<desc[b and <right[a]>]>)",
    "W(<foll[a]>) and <child[b]>",
    "W(<desc[a]/foll[b]>) or W(<desc[b and <right[a]>]>)",  // shared bodies
    "<desc[a]>",
    "<desc[a]> and <desc[b]>",
    "a and <child[b]>",
    "b or c",
    "<(child)*[a]>",
    "<(child/child)*[b]>",
    "<desc[W(<desc[c]/foll[a]>)]>",
    "W(<desc[c]/foll[a]>)",  // body shared with the previous query
    "<anc[a]>",
    "<foll[b]> or <child[c]>",
    "W(<desc[b]/foll[a]>) and W(<desc[c]/foll[a]>)",
    "<dos[a and <right[b]>]>",
    "W(<desc[a]>)",  // downward body: simplifies to Core XPath
    "<child[a]/desc[b]/anc[c]>",  // duplicate text
};
const size_t kNumWorkloadTexts = sizeof(kWorkload) / sizeof(kWorkload[0]);

struct Corpus {
  Alphabet alphabet;
  std::vector<std::shared_ptr<const Tree>> trees;
  std::vector<Query> queries;
  int nodes_per_tree = 0;
};

// Fills in place: Alphabet is neither copyable nor movable.
void BuildCorpus(Corpus* corpus) {
  const bool smoke = bench::SmokeMode();
  const int num_trees = smoke ? 4 : 12;
  corpus->nodes_per_tree = smoke ? 400 : 4000;
  const TreeShape shapes[] = {TreeShape::kUniformRecursive, TreeShape::kChain,
                              TreeShape::kFullBinary, TreeShape::kStar};
  for (int i = 0; i < num_trees; ++i) {
    corpus->trees.push_back(std::make_shared<Tree>(
        bench::BenchTree(&corpus->alphabet, corpus->nodes_per_tree,
                         shapes[i % 4], /*seed=*/100 + i)));
  }
  for (const char* text : kWorkload) {
    corpus->queries.push_back(
        Query::Parse(text, &corpus->alphabet).ValueOrDie());
  }
}

// (2) Parse throughput: cold Query::Parse vs. warm PlanCache::Parse.
void ParseReport(Corpus& corpus, std::ostringstream* json) {
  const int inner = bench::SmokeMode() ? 20 : 200;
  const double cold_seconds = bench::MedianSecondsN(
      [&] {
        for (const char* text : kWorkload) {
          Query::Parse(text, &corpus.alphabet).ValueOrDie();
        }
      },
      inner);
  PlanCache cache;
  for (const char* text : kWorkload) {
    cache.Parse(text, &corpus.alphabet).ValueOrDie();  // prime
  }
  const double warm_seconds = bench::MedianSecondsN(
      [&] {
        for (const char* text : kWorkload) {
          cache.Parse(text, &corpus.alphabet).ValueOrDie();
        }
      },
      inner);
  // Compiled-plan path: the first pass pays one lowering per distinct
  // canonical plan root (program misses); from then on every ParseCompiled
  // is a text hit + program hit, both counted in Stats.
  for (const char* text : kWorkload) {
    cache.ParseCompiled(text, &corpus.alphabet).ValueOrDie();
  }
  const double compiled_seconds = bench::MedianSecondsN(
      [&] {
        for (const char* text : kWorkload) {
          cache.ParseCompiled(text, &corpus.alphabet).ValueOrDie();
        }
      },
      inner);
  const size_t num_texts = sizeof(kWorkload) / sizeof(kWorkload[0]);
  const double cold_us = cold_seconds / num_texts * 1e6;
  const double warm_us = warm_seconds / num_texts * 1e6;
  const double compiled_us = compiled_seconds / num_texts * 1e6;
  const double speedup = warm_us > 0 ? cold_us / warm_us : 0;
  std::printf("\nParse throughput (%zu texts, %d duplicates):\n", num_texts,
              2);
  bench::PrintRow({"cold us/parse", "warm us/parse", "warm compiled us",
                   "speedup"});
  bench::PrintRow({bench::Fmt(cold_us, 2), bench::Fmt(warm_us, 3),
                   bench::Fmt(compiled_us, 3), bench::Fmt(speedup, 1)});
  const PlanCache::Stats stats = cache.stats();
  std::printf("PlanCache: %zu hits, %zu misses, %zu evictions; "
              "%zu program hits, %zu program misses (lowering %.3f ms)\n",
              stats.hits, stats.misses, stats.evictions, stats.program_hits,
              stats.program_misses, stats.lowering_seconds * 1e3);
  *json << "\"parse\": {\"cold_us\": " << bench::Fmt(cold_us, 3)
        << ", \"warm_us\": " << bench::Fmt(warm_us, 3)
        << ", \"speedup\": " << bench::Fmt(speedup, 1) << "}, "
        << "\"plan_cache\": {\"hits\": " << stats.hits
        << ", \"misses\": " << stats.misses
        << ", \"evictions\": " << stats.evictions
        << ", \"program_hits\": " << stats.program_hits
        << ", \"program_misses\": " << stats.program_misses
        << ", \"lowering_ms\": " << bench::Fmt(stats.lowering_seconds * 1e3, 3)
        << "}";
}

// First (tree, query) index pair where the matrices differ, if any. A
// shape mismatch reports {0, 0}.
std::optional<std::pair<size_t, size_t>> FirstMismatch(
    const std::vector<std::vector<Bitset>>& got,
    const std::vector<std::vector<Bitset>>& want) {
  if (got.size() != want.size()) return std::make_pair(size_t{0}, size_t{0});
  for (size_t t = 0; t < got.size(); ++t) {
    if (got[t].size() != want[t].size()) return std::make_pair(t, size_t{0});
    for (size_t q = 0; q < got[t].size(); ++q) {
      if (!(got[t][q] == want[t][q])) return std::make_pair(t, q);
    }
  }
  return std::nullopt;
}

// (1) + (3): batch throughput sweep with a bit-for-bit check against the
// sequential loop.
void ThroughputReport(Corpus& corpus, std::ostringstream* json) {
  const bool smoke = bench::SmokeMode();
  // Reference: plain sequential Query::Select, no shared caches.
  std::vector<std::vector<Bitset>> reference(corpus.trees.size());
  const double seq_seconds = bench::MedianSeconds([&] {
    for (size_t t = 0; t < corpus.trees.size(); ++t) {
      reference[t].clear();
      for (const Query& query : corpus.queries) {
        reference[t].push_back(query.Select(*corpus.trees[t]));
      }
    }
  });
  const double pairs = static_cast<double>(corpus.trees.size()) *
                       static_cast<double>(corpus.queries.size());
  std::printf("\nBatch throughput (%zu trees x %zu queries = %.0f tasks; "
              "sequential baseline %.1f qps):\n",
              corpus.trees.size(), corpus.queries.size(), pairs,
              pairs / seq_seconds);
  bench::PrintRow({"workers", "cold qps", "warm qps", "warm vs 1w"});

  std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4, 8};
  bool all_match = true;
  std::string mismatch_case;
  double warm_qps_1 = 0;
  *json << "\"workers\": [";
  for (size_t wi = 0; wi < worker_counts.size(); ++wi) {
    const int workers = worker_counts[wi];
    // Cold: fresh engine per sample — includes TreeCache construction and
    // the first (memo-building) evaluation of every W body.
    const double cold_seconds = bench::MedianSeconds([&] {
      BatchOptions options;
      options.num_workers = workers;
      BatchEngine engine(options);
      for (const auto& tree : corpus.trees) engine.AddTree(tree);
      auto results = engine.Run(corpus.queries);
      benchmark::DoNotOptimize(results);
    });
    // Warm: same engine re-run — TreeCaches and per-worker scratch pools
    // are populated, steady-state serving throughput.
    BatchOptions options;
    options.num_workers = workers;
    BatchEngine engine(options);
    for (const auto& tree : corpus.trees) engine.AddTree(tree);
    auto warm_results = engine.Run(corpus.queries);  // warm-up run
    if (const auto bad = FirstMismatch(warm_results, reference)) {
      all_match = false;
      // Dump the first offending (tree, query) pair in the fuzzer's .case
      // format so it enters the standard replay/shrink workflow.
      if (mismatch_case.empty() && bad->second < kNumWorkloadTexts) {
        mismatch_case = bench::DumpMismatchCase(
            *corpus.trees[bad->first], corpus.alphabet,
            kWorkload[bad->second],
            "exp11: BatchEngine (workers=" + std::to_string(workers) +
                ") differs from sequential Query::Select");
      }
    }
    const double warm_seconds = bench::MedianSeconds([&] {
      auto results = engine.Run(corpus.queries);
      benchmark::DoNotOptimize(results);
    });
    const double cold_qps = pairs / cold_seconds;
    const double warm_qps = pairs / warm_seconds;
    if (workers == 1) warm_qps_1 = warm_qps;
    const double vs_one = warm_qps_1 > 0 ? warm_qps / warm_qps_1 : 0;
    bench::PrintRow({std::to_string(workers), bench::Fmt(cold_qps, 0),
                     bench::Fmt(warm_qps, 0), bench::Fmt(vs_one, 2)});
    if (wi > 0) *json << ", ";
    *json << "{\"workers\": " << workers
          << ", \"cold_qps\": " << bench::Fmt(cold_qps, 1)
          << ", \"warm_qps\": " << bench::Fmt(warm_qps, 1)
          << ", \"warm_speedup_vs_1\": " << bench::Fmt(vs_one, 2) << "}";
  }
  *json << "]";
  if (!all_match) {
    std::fprintf(stderr,
                 "FATAL: BatchEngine results differ from sequential "
                 "Query::Select%s%s\n",
                 mismatch_case.empty() ? "" : "; repro written to ",
                 mismatch_case.c_str());
    std::exit(1);
  }
  std::printf("Match vs sequential Select: yes (bit-for-bit)\n");
  *json << ", \"match\": true";
}

// Registered benchmark so `--benchmark_filter` users can sweep too.
void BM_BatchRunWarm(benchmark::State& state) {
  static Corpus* corpus = [] {
    auto* c = new Corpus;
    BuildCorpus(c);
    return c;
  }();
  BatchOptions options;
  options.num_workers = static_cast<int>(state.range(0));
  BatchEngine engine(options);
  for (const auto& tree : corpus->trees) engine.AddTree(tree);
  benchmark::DoNotOptimize(engine.Run(corpus->queries));  // warm caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(corpus->queries));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus->trees.size()) *
                          static_cast<int64_t>(corpus->queries.size()));
}
BENCHMARK(BM_BatchRunWarm)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E11: throughput layer (BatchEngine + PlanCache + TreeCache)",
      "engineering experiment, no paper claim: batch qps scales with "
      "workers; warm plan-cache parses are >=10x cold parses; batch "
      "results are bit-for-bit equal to sequential Select",
      "corpus of mixed-shape trees x 24-query Regular-XPath(W) workload; "
      "worker sweep with cold vs warm caches; cold Query::Parse vs warm "
      "PlanCache::Parse");
  xptc::Corpus corpus;
  xptc::BuildCorpus(&corpus);
  std::ostringstream json;
  json << "{\"smoke\": " << (xptc::bench::SmokeMode() ? "true" : "false")
       << ", \"hw_threads\": " << xptc::ThreadPool::DefaultWorkers()
       << ", \"trees\": " << corpus.trees.size()
       << ", \"queries\": " << corpus.queries.size()
       << ", \"nodes_per_tree\": " << corpus.nodes_per_tree << ", ";
  xptc::ParseReport(corpus, &json);
  json << ", ";
  xptc::ThroughputReport(corpus, &json);
  json << "}";
  xptc::bench::UpdateBenchJson(xptc::bench::ThroughputJsonPath(),
                               "exp11_throughput", json.str());
  // The full registry export rides along: the section fields above are a
  // named slice of these counters (PlanCache/TreeCache/ThreadPool/Batch
  // stats() all read the same registry-backed counters).
  xptc::bench::UpdateBenchJson(xptc::bench::ThroughputJsonPath(),
                               "obs_registry",
                               xptc::obs::Registry::Default().Json());
  std::printf("(recorded in %s)\n",
              xptc::bench::ThroughputJsonPath().c_str());
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
