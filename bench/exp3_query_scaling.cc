// E3 — combined complexity is linear in |Q| as well: growing step-chain
// queries on a fixed tree should evaluate in time proportional to their
// size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "xpath/eval.h"

namespace xptc {
namespace {

// child[a]/desc[b]/child[a]/... — a chain of `steps` filtered steps.
NodePtr ChainQuery(int steps, const std::vector<Symbol>& labels) {
  PathPtr path = MakeAxis(Axis::kChild);
  for (int i = 0; i < steps; ++i) {
    const Axis axis = i % 2 == 0 ? Axis::kChild : Axis::kDescendant;
    path = MakeSeq(path, MakeFilter(MakeAxis(axis),
                                    MakeLabel(labels[i % labels.size()])));
  }
  return MakeSome(std::move(path));
}

void QuerySizeReport() {
  std::printf("\nEvaluation time vs. query size (fixed tree n = 4096):\n");
  bench::PrintRow({"steps", "|query|", "time us", "us/step"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Tree tree =
      bench::BenchTree(&alphabet, 4096, TreeShape::kUniformRecursive, 11);
  for (int steps : {4, 8, 16, 32, 64, 128, 256}) {
    NodePtr query = ChainQuery(steps, labels);
    const double seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *query); }, 5);
    bench::PrintRow({std::to_string(steps), std::to_string(NodeSize(*query)),
                     bench::Fmt(seconds * 1e6, 1),
                     bench::Fmt(seconds * 1e6 / steps, 2)});
  }
  std::printf("Expected shape: us/step roughly constant (linear in |Q|).\n");
}

void BM_ChainQuery(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Tree tree =
      bench::BenchTree(&alphabet, 4096, TreeShape::kUniformRecursive, 11);
  NodePtr query = ChainQuery(static_cast<int>(state.range(0)), labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainQuery)->RangeMultiplier(2)->Range(4, 256)->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E3: combined complexity, query side",
      "Core XPath evaluation is linear in |Q| on a fixed tree [T2]",
      "step-chain queries of 4..256 filtered steps on a 4096-node tree");
  xptc::QuerySizeReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
