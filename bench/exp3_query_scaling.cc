// E3 — combined complexity is linear in |Q| as well: growing step-chain
// queries on a fixed tree should evaluate in time proportional to their
// size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "xpath/eval.h"
#include "xpath/eval_seed.h"

namespace xptc {
namespace {

// child[a]/desc[b]/child[a]/... — a chain of `steps` filtered steps.
NodePtr ChainQuery(int steps, const std::vector<Symbol>& labels) {
  PathPtr path = MakeAxis(Axis::kChild);
  for (int i = 0; i < steps; ++i) {
    const Axis axis = i % 2 == 0 ? Axis::kChild : Axis::kDescendant;
    path = MakeSeq(path, MakeFilter(MakeAxis(axis),
                                    MakeLabel(labels[i % labels.size()])));
  }
  return MakeSome(std::move(path));
}

void QuerySizeReport() {
  std::printf("\nEvaluation time vs. query size (fixed tree n = 4096):\n");
  bench::PrintRow({"steps", "|query|", "time us", "us/step"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Tree tree =
      bench::BenchTree(&alphabet, 4096, TreeShape::kUniformRecursive, 11);
  std::vector<int> step_counts = {4, 8, 16, 32, 64, 128, 256};
  if (bench::SmokeMode()) step_counts = {4, 8, 16};
  for (int steps : step_counts) {
    NodePtr query = ChainQuery(steps, labels);
    const double seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *query); }, 5);
    bench::PrintRow({std::to_string(steps), std::to_string(NodeSize(*query)),
                     bench::Fmt(seconds * 1e6, 1),
                     bench::Fmt(seconds * 1e6 / steps, 2)});
  }
  std::printf("Expected shape: us/step roughly constant (linear in |Q|).\n");
}

// Deep-star speedups: `(child)*` from the root of a depth-d chain forces
// the star fixpoint through d rounds. The seed engine re-derives the image
// of the whole reached set every round (O(d·n) bit-work); the semi-naive
// engine expands only the frontier (near-linear total). Both run in this
// process and must agree bit-for-bit.
void DeepStarReport() {
  const bool smoke = bench::SmokeMode();
  std::printf("\nSeed engine vs optimized engine, (child)* on depth-d "
              "chain trees:\n");
  bench::PrintRow({"depth", "seed ms", "opt ms", "speedup", "match"});
  Alphabet alphabet;
  PathPtr star = MakeStar(MakeAxis(Axis::kChild));
  std::vector<int> depths = smoke ? std::vector<int>{100, 200}
                                  : std::vector<int>{1000, 4000};
  std::vector<bench::SpeedupCase> cases;
  for (int depth : depths) {
    const Tree tree =
        bench::BenchTree(&alphabet, depth, TreeShape::kChain, 13);
    Bitset from_root(tree.size());
    from_root.Set(tree.root());
    Bitset opt_bits(0), seed_bits(0);
    bench::SpeedupCase result;
    result.name = "child_star_depth_" + std::to_string(depth);
    result.query = "(child)* forward image from root";
    result.n = depth;
    result.opt_seconds = bench::MedianSecondsN(
        [&] {
          Evaluator evaluator(tree);
          opt_bits = evaluator.EvalFwd(*star, from_root);
        },
        smoke ? 3 : 20, 5);
    result.seed_seconds = bench::MedianSeconds(
        [&] {
          SeedEvaluator evaluator(tree);
          seed_bits = evaluator.EvalFwd(*star, from_root);
        },
        3);
    result.match = opt_bits == seed_bits;
    cases.push_back(result);
    bench::PrintRow({std::to_string(depth),
                     bench::Fmt(result.seed_seconds * 1e3, 3),
                     bench::Fmt(result.opt_seconds * 1e3, 4),
                     bench::Fmt(result.seed_seconds / result.opt_seconds, 1),
                     result.match ? "yes" : "MISMATCH"});
    if (!result.match) {
      std::fprintf(stderr, "FATAL: engines disagree at depth %d\n", depth);
      std::exit(1);
    }
  }
  bench::UpdateBenchJson(bench::BenchJsonPath(), "exp3_query_scaling",
                         bench::SpeedupCasesJson(cases));
  std::printf("(recorded in %s)\n", bench::BenchJsonPath().c_str());
}

void BM_ChainQuery(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Tree tree =
      bench::BenchTree(&alphabet, 4096, TreeShape::kUniformRecursive, 11);
  NodePtr query = ChainQuery(static_cast<int>(state.range(0)), labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ChainQuery)->RangeMultiplier(2)->Range(4, 256)->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E3: combined complexity, query side",
      "Core XPath evaluation is linear in |Q| on a fixed tree [T2]",
      "step-chain queries of 4..256 filtered steps on a 4096-node tree");
  xptc::QuerySizeReport();
  xptc::DeepStarReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
