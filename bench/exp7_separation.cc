// E7 — separation protocol (Theorem T3): nested/plain tree-walking
// automata do not capture all regular tree languages. The paper's proof is
// non-constructive for experiment purposes, so this binary runs the
// falsifiable search protocol from DESIGN.md §3.4:
//
//   * easy control   : "some node is labelled a"   (regular, TWA-easy)
//   * hard candidate : boolean-circuit evaluation  (regular; evaluating it
//     by walking appears to need a stack)
//
// For each k it searches total deterministic table-TWA with k states —
// exhaustively for k = 1 over a restricted move set, by seeded random
// sampling plus hill climbing for k = 2..4 — and reports the best
// agreement with the target DFTA over an exhaustive bed of small trees.
// The expected shape: 100% for the control at tiny k, while the hard
// candidate stays strictly below 100% at every searched size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "bta/bta.h"
#include "bta/languages.h"
#include "common/rng.h"
#include "tree/enumerate.h"
#include "tree/generate.h"
#include "twa/brute.h"

namespace xptc {
namespace {

struct EvalBed {
  std::vector<Tree> trees;
  std::vector<bool> expected;
  std::vector<int> label_index;  // symbol → dense label index
  int num_labels;
};

EvalBed MakeBed(const std::vector<Symbol>& universe, const Dfta& target,
                Alphabet* alphabet, int exhaustive_nodes, int random_extra,
                uint64_t seed) {
  EvalBed bed;
  bed.num_labels = static_cast<int>(universe.size());
  bed.label_index.assign(static_cast<size_t>(alphabet->size()) + 1, 0);
  for (size_t i = 0; i < universe.size(); ++i) {
    bed.label_index[static_cast<size_t>(universe[i])] = static_cast<int>(i);
  }
  EnumerateTrees(exhaustive_nodes, universe,
                 [&](const Tree& tree) { bed.trees.push_back(tree); });
  Rng rng(seed);
  for (int i = 0; i < random_extra; ++i) {
    TreeGenOptions options;
    options.num_nodes = rng.NextInt(exhaustive_nodes + 1, 20);
    options.shape = static_cast<TreeShape>(rng.NextInt(0, 6));
    bed.trees.push_back(GenerateTree(options, universe, &rng));
  }
  for (const Tree& tree : bed.trees) {
    bed.expected.push_back(target.Accepts(tree));
  }
  return bed;
}

// Agreement with early abort: once the candidate can no longer reach
// `give_up_below`, stop and return 0 (used to prune exhaustive sweeps).
double Agreement(const DtwaTable& dtwa, const EvalBed& bed,
                 double give_up_below = 0.0) {
  const int total = static_cast<int>(bed.trees.size());
  const int allowed_misses =
      total - static_cast<int>(give_up_below * total);
  int agreed = 0;
  int missed = 0;
  for (size_t i = 0; i < bed.trees.size(); ++i) {
    if (RunDtwaTable(dtwa, bed.trees[i], bed.label_index) ==
        bed.expected[i]) {
      ++agreed;
    } else if (++missed > allowed_misses) {
      return 0.0;
    }
  }
  return static_cast<double>(agreed) / static_cast<double>(total);
}

// Hill-climbing search with random restarts; returns best agreement found.
double SearchBest(const EvalBed& bed, int num_states, int restarts,
                  int steps_per_restart, uint64_t seed) {
  const std::vector<Move> moves = {Move::kUp, Move::kDownFirst, Move::kRight,
                                   Move::kLeft, Move::kDownLast};
  Rng rng(seed);
  double best = 0;
  for (int restart = 0; restart < restarts; ++restart) {
    DtwaTable current = RandomDtwa(num_states, bed.num_labels, moves, &rng);
    double current_score = Agreement(current, bed);
    for (int step = 0; step < steps_per_restart; ++step) {
      DtwaTable candidate = current;
      MutateDtwa(&candidate, moves, &rng);
      const double candidate_score = Agreement(candidate, bed);
      if (candidate_score >= current_score) {
        current = std::move(candidate);
        current_score = candidate_score;
      }
    }
    best = std::max(best, current_score);
    if (best >= 1.0) break;
  }
  return best;
}

// Exhaustive k=1 search over a restricted move set — the full one-state
// space. Only feasible for small label universes (5^(4·labels) tables), so
// the hard language's k=1 row is sampled instead and labelled as such.
double ExhaustiveOneState(const EvalBed& bed) {
  const std::vector<Move> moves = {Move::kUp, Move::kDownFirst, Move::kRight};
  double best = 0;
  EnumerateDtwa(1, bed.num_labels, moves,
                /*limit=*/1'000'000, [&](const DtwaTable& dtwa) {
                  best = std::max(best, Agreement(dtwa, bed, best));
                });
  return best;
}

// The handcrafted 2-state DFS table that decides "some node labelled a"
// exactly (states: 0 = descend, 1 = pop).
DtwaTable DfsHasLabel(int num_labels, int target_label) {
  DtwaTable dtwa;
  dtwa.num_states = 2;
  dtwa.num_labels = num_labels;
  dtwa.table.assign(static_cast<size_t>(2 * dtwa.NumObs()),
                    DtwaTable::Action{});
  for (int label = 0; label < num_labels; ++label) {
    for (bool leaf : {false, true}) {
      for (bool last : {false, true}) {
        const int obs = DtwaTable::ObsIndex(label, leaf, last);
        DtwaTable::Action& go = dtwa.At(0, obs);
        if (label == target_label) {
          go.kind = DtwaTable::ActionKind::kAccept;
        } else if (!leaf) {
          go = {DtwaTable::ActionKind::kMove, Move::kDownFirst, 0};
        } else if (!last) {
          go = {DtwaTable::ActionKind::kMove, Move::kRight, 0};
        } else {
          go = {DtwaTable::ActionKind::kMove, Move::kUp, 1};
        }
        DtwaTable::Action& back = dtwa.At(1, obs);
        if (!last) {
          back = {DtwaTable::ActionKind::kMove, Move::kRight, 0};
        } else {
          back = {DtwaTable::ActionKind::kMove, Move::kUp, 1};
        }
      }
    }
  }
  return dtwa;
}

void SeparationReport() {
  Alphabet alphabet;
  // Control language: some node labelled 'a' over {a, b}.
  const std::vector<Symbol> easy_universe = DefaultLabels(&alphabet, 2);
  const Dfta easy = HasLabelDfta(easy_universe, easy_universe[0]);
  EvalBed easy_bed = MakeBed(easy_universe, easy, &alphabet, 5, 60, 101);
  // Hard candidate: boolean-circuit evaluation over {and, or, t, f}.
  const Symbol and_sym = alphabet.Intern("g_and");
  const Symbol or_sym = alphabet.Intern("g_or");
  const Symbol t_sym = alphabet.Intern("g_t");
  const Symbol f_sym = alphabet.Intern("g_f");
  const std::vector<Symbol> hard_universe = {and_sym, or_sym, t_sym, f_sym};
  const Dfta hard = BooleanCircuitDfta(and_sym, or_sym, t_sym, f_sym);
  EvalBed hard_bed = MakeBed(hard_universe, hard, &alphabet, 4, 60, 102);

  // Base rates calibrate the search numbers: a constant answer already
  // scores the majority-class share.
  auto base_rate = [](const EvalBed& bed) {
    int accepting = 0;
    for (bool expected : bed.expected) accepting += expected ? 1 : 0;
    const double share =
        static_cast<double>(accepting) / static_cast<double>(bed.expected.size());
    return std::max(share, 1.0 - share);
  };
  std::printf("\nEvaluation beds: easy %zu trees (base rate %s%%), hard %zu "
              "trees (base rate %s%%).\n",
              easy_bed.trees.size(),
              bench::Fmt(100 * base_rate(easy_bed), 1).c_str(),
              hard_bed.trees.size(),
              bench::Fmt(100 * base_rate(hard_bed), 1).c_str());
  const double dfs_agreement = Agreement(DfsHasLabel(2, 0), easy_bed);
  std::printf("Handcrafted 2-state DFS on easy language: agreement %s%% "
              "(constructive upper bound, admitted as a k>=2 candidate).\n",
              bench::Fmt(100 * dfs_agreement, 1).c_str());

  std::printf("\nBest agreement per automaton size, carried forward over k "
              "(a k-state table embeds in k+1 states). Budget: k=1 "
              "exhaustive/restricted for the easy bed; otherwise hill-climb "
              "40 restarts x 400 steps:\n");
  bench::PrintRow({"states", "easy best", "hard best"});
  double easy_best = 0, hard_best = 0;
  for (int k = 1; k <= 4; ++k) {
    if (k == 1) {
      // Exhaustive over the full restricted one-state space for the easy
      // language (5^8 tables); the hard language's one-state space (5^16)
      // is sampled like the larger sizes.
      easy_best = ExhaustiveOneState(easy_bed);
      hard_best = SearchBest(hard_bed, 1, 40, 400, 9100);
    } else {
      easy_best = std::max(
          {easy_best, SearchBest(easy_bed, k, 40, 400, 9000 + k),
           dfs_agreement});
      hard_best =
          std::max(hard_best, SearchBest(hard_bed, k, 40, 400, 9100 + k));
    }
    bench::PrintRow({std::to_string(k), bench::Fmt(100 * easy_best, 1) + "%",
                     bench::Fmt(100 * hard_best, 1) + "%"});
  }
  std::printf(
      "Expected shape: easy reaches 100%% by k = 2 (DFS exists); hard stays "
      "bounded away from 100%% at every searched size. This is evidence in "
      "the direction of T3 under the stated budget, not a proof.\n");
}

void BM_AgreementEvaluation(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> universe = DefaultLabels(&alphabet, 2);
  const Dfta easy = HasLabelDfta(universe, universe[0]);
  EvalBed bed = MakeBed(universe, easy, &alphabet, 5, 60, 101);
  const DtwaTable dfs = DfsHasLabel(2, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Agreement(dfs, bed));
  }
}
BENCHMARK(BM_AgreementEvaluation);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E7: separation protocol — walking automata vs. regular languages",
      "nested TWA (a fortiori plain TWA) do not capture all regular tree "
      "languages [T3]",
      "search small deterministic table-TWA against an easy and a hard "
      "regular target; report best agreement per state count");
  xptc::SeparationReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
