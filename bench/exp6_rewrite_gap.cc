// E6 — the query-rewriting motivation: equivalent queries can differ by
// orders of magnitude in evaluation time, and a sound simplifier driven by
// the axiom corpus closes the gap. (The "evaluation times of two
// equivalent queries may differ up to several orders of magnitude"
// observation that motivates studying XPath equivalence.)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "sat/bounded.h"
#include "xpath/eval.h"
#include "xpath/parser.h"
#include "xpath/rewrite.h"

namespace xptc {
namespace {

struct Pair {
  const char* slow;
  const char* fast;
};

// Each pair is semantically equivalent; the slow member carries redundant
// structure an optimizer must remove.
const Pair kPairs[] = {
    {"<dos/dos/dos/dos[a]>", "<dos[a]>"},
    {"<(child | child)/(desc | desc)[a]>", "<child/desc[a]>"},
    {"<desc[true][true][true][a and true]>", "<desc[a]>"},
    {"<(desc*)*[a]>", "<dos[a]>"},
    {"<child/child* | child*/child>", "<desc>"},
    {"not not <desc[not not a]>", "<desc[a]>"},
    // Redundant unions multiply evaluation work combinatorially.
    {"<(child|child|child|child)/(desc|desc|desc|desc)[a]>",
     "<child/desc[a]>"},
    // Nested stars force fixpoints over fixpoints.
    {"<((child | parent)*)*[a]>", "<(child | parent)*[a]>"},
};

void GapReport() {
  std::printf("\nEquivalent-query evaluation gap (tree n = 8192):\n");
  bench::PrintRow({"pair", "slow us", "fast us", "gap", "simplified us"},
                  16);
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, 8192, TreeShape::kUniformRecursive, 29);
  BoundedSearchOptions sat_options;
  sat_options.random_rounds = 40;
  BoundedChecker checker(&alphabet, sat_options);
  int index = 0;
  for (const Pair& pair : kPairs) {
    NodePtr slow = ParseNode(pair.slow, &alphabet).ValueOrDie();
    NodePtr fast = ParseNode(pair.fast, &alphabet).ValueOrDie();
    // Soundness gate: the pair really is equivalent (bounded refutation).
    if (checker.FindNodeInequivalence(*slow, *fast).has_value()) {
      std::printf("  PAIR %d IS NOT EQUIVALENT — fix the experiment!\n",
                  index);
      ++index;
      continue;
    }
    NodePtr simplified = SimplifyNode(slow);
    const double slow_seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *slow); }, 3);
    const double fast_seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *fast); }, 3);
    const double simp_seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *simplified); }, 3);
    bench::PrintRow({std::to_string(index),
                     bench::Fmt(slow_seconds * 1e6, 1),
                     bench::Fmt(fast_seconds * 1e6, 1),
                     bench::Fmt(slow_seconds / fast_seconds, 1) + "x",
                     bench::Fmt(simp_seconds * 1e6, 1)},
                    16);
    ++index;
  }
  std::printf("Expected shape: multi-x gaps between equivalent forms; the "
              "simplified column tracks the fast column.\n");
}

void BM_SlowForm(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query =
      ParseNode(kPairs[state.range(0)].slow, &alphabet).ValueOrDie();
  const Tree tree =
      bench::BenchTree(&alphabet, 8192, TreeShape::kUniformRecursive, 29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
}
BENCHMARK(BM_SlowForm)->DenseRange(0, 7);

void BM_SimplifiedForm(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = SimplifyNode(
      ParseNode(kPairs[state.range(0)].slow, &alphabet).ValueOrDie());
  const Tree tree =
      bench::BenchTree(&alphabet, 8192, TreeShape::kUniformRecursive, 29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
}
BENCHMARK(BM_SimplifiedForm)->DenseRange(0, 7);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E6: rewrite gap between equivalent queries",
      "evaluation cost separates semantically equivalent queries — the "
      "motivation for equivalence reasoning; sound axiom-driven rewriting "
      "recovers the fast form",
      "equivalent pairs (equivalence machine-checked by bounded-model "
      "refutation), evaluated on an 8192-node tree, before/after Simplify");
  xptc::GapReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
