// E13 — SIMD word kernels and the bytecode superoptimizer (ISSUE 6).
//
// Two claims are measured:
//
//  1. Kernel vectorization: the engine's bulk boolean loops (ranged
//     OR/AND/ANDN/NOT and the fused AND-NOT/OR-NOT assigns) run through
//     the runtime dispatch shim (common/simd.h); on an AVX2 host the
//     vector level should be >= 2x the generic word-at-a-time level on
//     L1/L2-resident operands (n >= 64k bits). `copy` (memmove on both
//     levels) and `count` (scalar popcount on both — AVX2 has no integer
//     popcount) are reported for context but carry no expectation.
//
//  2. Superoptimization: beam-searched rewrites of compiled programs
//     (and-not fusion, dead-code drops, star-invariant hoists) give a
//     measurable end-to-end win on the exp12-style DAG workloads — whose
//     `... and not b` / `or not X` combinators are exactly the fusable
//     shapes — and are never slower anywhere (the `superopt_not_slower`
//     CI gate, 2% tolerance for timer noise).
//
// Any bit-for-bit mismatch between base and optimized programs dumps a
// replayable .case file and exits 1; a violated not-slower gate exits 1.
//
// BENCH_kernels.json section schema ("exp13_kernels"):
//   {"smoke": bool,
//    "simd": {"active": str, "rows": [{"kernel": str, "bits": int,
//             "generic_ns": f, "active_ns": f, "speedup": f}, ...],
//             "ranged_2x_at_64k": bool},
//    "superopt": {"n": int, "cases": [{"name": str, "instrs_before": int,
//                 "instrs_after": int, "fused": int, "dropped": int,
//                 "hoisted": int, "sunk": int, "base_us": f, "opt_us": f,
//                 "speedup": f,
//                 "rewritten": bool, "match": bool}, ...]},
//    "superopt_not_slower": bool}

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "common/simd.h"
#include "exec/engine.h"
#include "exec/program.h"
#include "exec/superopt.h"
#include "obs/metrics.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

// ---------------------------------------------------------------------------
// Part 1: ranged-kernel microbench, generic level vs the detected level.
//
// Benchmarks run through the Bitset layer (not raw kernel pointers), so
// the measured path is the production one: ForEachRangeRun's head/tail
// split plus the dispatched whole-word run.

struct KernelRow {
  std::string kernel;
  int bits = 0;
  double generic_ns = 0;
  double active_ns = 0;
  bool ranged = false;  // participates in the >= 2x expectation
};

Bitset RandomBits(int bits, Rng* rng, double density = 0.4) {
  Bitset out(bits);
  for (int i = 0; i < bits; ++i) {
    if (rng->NextBool(density)) out.Set(i);
  }
  return out;
}

double KernelNs(simd::Level level, int bits, int which, int reps) {
  simd::SetLevelForTesting(level);
  Rng rng(11);
  const Bitset a = RandomBits(bits, &rng);
  Bitset b = RandomBits(bits, &rng);
  if (which == 8) b |= a;  // subset holds: the probe scans every word
  Bitset dst = RandomBits(bits, &rng);
  int64_t sink = 0;
  const double seconds = bench::MedianSecondsN(
      [&] {
        switch (which) {
          case 0: dst.OrRange(a, 0, bits); break;
          case 1: dst.AndRange(a, 0, bits); break;
          case 2: dst.SubtractRange(a, 0, bits); break;
          case 3: dst.NotRange(a, 0, bits); break;
          case 4: dst.AndNotRange(a, b, 0, bits); break;
          case 5: dst.OrNotRange(a, b, 0, bits); break;
          case 6: dst.CopyRange(a, 0, bits); break;
          case 7: sink += dst.CountRange(0, bits); break;
          case 8: sink += a.IsSubsetOfRange(b, 0, bits); break;
        }
      },
      reps);
  benchmark::DoNotOptimize(sink);
  simd::ResetLevelForTesting();
  return seconds * 1e9;
}

std::vector<KernelRow> KernelReport(bool* ranged_2x_at_64k) {
  const simd::Level active = simd::ActiveLevel();
  std::printf("\nRanged kernels, generic vs %s (production Bitset path):\n",
              simd::LevelName(active));
  bench::PrintRow({"kernel", "bits", "generic ns", "active ns", "speedup"});
  struct KernelCase {
    const char* name;
    int which;
    bool ranged;
  };
  const KernelCase kernels[] = {
      {"or", 0, true},      {"and", 1, true},    {"subtract", 2, true},
      {"not", 3, true},     {"andnot", 4, true}, {"ornot", 5, true},
      {"copy", 6, false},   {"count", 7, false}, {"subset", 8, false},
  };
  std::vector<int> sizes = {65536, 1 << 20};
  if (bench::SmokeMode()) sizes = {16384, 65536};
  *ranged_2x_at_64k = active != simd::Level::kGeneric;
  std::vector<KernelRow> rows;
  for (int bits : sizes) {
    const int reps = bits > 100000 ? 1000 : 8000;
    for (const KernelCase& kc : kernels) {
      KernelRow row;
      row.kernel = kc.name;
      row.bits = bits;
      row.ranged = kc.ranged;
      row.generic_ns = KernelNs(simd::Level::kGeneric, bits, kc.which, reps);
      row.active_ns = KernelNs(active, bits, kc.which, reps);
      const double speedup = row.generic_ns / row.active_ns;
      bench::PrintRow({kc.name, std::to_string(bits),
                       bench::Fmt(row.generic_ns, 1),
                       bench::Fmt(row.active_ns, 1),
                       bench::Fmt(speedup, 2) + "x"});
      // The 2x expectation is judged at 64k bits, where operands are
      // cache-resident and the kernel is compute-bound; at 1M bits the
      // loop is memory-bound and the vector win legitimately compresses.
      if (kc.ranged && bits == 65536 && active != simd::Level::kGeneric &&
          speedup < 2.0) {
        *ranged_2x_at_64k = false;
      }
      rows.push_back(std::move(row));
    }
  }
  if (active == simd::Level::kGeneric) {
    std::printf("(no vector level available on this host/build — generic "
                "measured against itself, no 2x expectation)\n");
  } else {
    std::printf("Expected shape: >= 2x on the boolean ranged kernels at "
                "n >= 64k; copy and count have no vector form and stay "
                "~1x.\n");
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Part 2: superoptimizer end to end — base vs optimized programs on the
// exp12-style DAG workload plus fusion- and star-shaped queries.

// exp12's DAG builder: `(B and a) or (B and not b) or (B and c) or not B`
// per wrap — four pointer-distinct occurrences of B, and the `and not` /
// `or not` combinators the superoptimizer fuses.
std::string Duplicate(const std::string& base, int wraps) {
  std::string text = base;
  for (int i = 0; i < wraps; ++i) {
    text = "((" + text + " and a) or (" + text + " and not b) or (" + text +
           " and c) or not " + text + ")";
  }
  return text;
}

struct SuperoptCase {
  std::string name;
  std::string text;
  int instrs_before = 0;
  int instrs_after = 0;
  int fused = 0;
  int dropped = 0;
  int hoisted = 0;
  int sunk = 0;
  double base_seconds = 0;
  double opt_seconds = 0;
  bool rewritten = false;
  bool match = false;
};

std::vector<SuperoptCase> SuperoptReport(int n, bool* all_match) {
  std::printf("\nSuperoptimizer, base vs optimized programs (uniform random "
              "tree, n = %d):\n", n);
  bench::PrintRow({"case", "instrs", "opt instrs", "base us", "opt us",
                   "speedup", "match"});
  std::vector<SuperoptCase> cases = {
      {"dag_filter_x16", Duplicate("<child[a]/desc[b and <child[c]>]>", 2)},
      {"dag_star_x4", Duplicate("<(child[a]/desc)*[b]>", 1)},
      {"dag_mixed_x4",
       Duplicate("<desc[c]/anc[a]> and <child[b]/foll[c]>", 1)},
      {"fuse_chain", "(a and not b) and (c and not <child[a]>) and "
                     "(<desc[b]> or not c)"},
      {"star_not_body", "<(child)*[not a]> and not <desc[b and not c]>"},
      {"unchanged_star", "<(child)*[a]>"},
  };
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 7);
  exec::ExecEngine engine(tree);
  const int inner = bench::SmokeMode() ? 3 : 10;
  for (SuperoptCase& sc : cases) {
    NodePtr query = ParseNode(sc.text, &alphabet).ValueOrDie();
    auto base = exec::Program::Compile(query);
    auto opt = exec::Superoptimize(base);
    sc.instrs_before = static_cast<int>(base->code().size());
    sc.instrs_after = static_cast<int>(opt->code().size());
    sc.rewritten = opt->pre_superopt() != nullptr;
    if (sc.rewritten) {
      sc.fused = opt->superopt_stats().fused;
      sc.dropped = opt->superopt_stats().dropped;
      sc.hoisted = opt->superopt_stats().hoisted;
      sc.sunk = opt->superopt_stats().sunk;
    }
    Bitset base_bits(0), opt_bits(0);
    sc.base_seconds = bench::MedianSecondsN(
        [&] { base_bits = engine.EvalGeneral(*base); }, inner);
    sc.opt_seconds = bench::MedianSecondsN(
        [&] { opt_bits = engine.EvalGeneral(*opt); }, inner);
    sc.match = base_bits == opt_bits;
    bench::PrintRow({sc.name, std::to_string(sc.instrs_before),
                     std::to_string(sc.instrs_after),
                     bench::Fmt(sc.base_seconds * 1e6, 1),
                     bench::Fmt(sc.opt_seconds * 1e6, 1),
                     bench::Fmt(sc.base_seconds / sc.opt_seconds, 2) + "x",
                     sc.match ? "yes" : "MISMATCH"});
    if (!sc.match) {
      *all_match = false;
      const std::string path = bench::DumpMismatchCase(
          tree, alphabet, sc.text,
          "exp13 superopt case: base vs optimized program");
      std::fprintf(stderr, "FATAL: programs disagree on %s (case: %s)\n",
                   sc.name.c_str(), path.c_str());
    }
  }
  std::printf("Expected shape: the DAG and fusion cases lose instructions "
              "and run measurably faster (fused single-pass kernels); "
              "`unchanged_star` is returned pointer-equal and must tie.\n");
  return cases;
}

// ---------------------------------------------------------------------------
// JSON section.

std::string SectionJson(const std::vector<KernelRow>& kernels,
                        bool ranged_2x_at_64k,
                        const std::vector<SuperoptCase>& superopt, int n,
                        bool superopt_not_slower) {
  std::ostringstream os;
  os << "{\"smoke\": " << (bench::SmokeMode() ? "true" : "false");
  os << ", \"simd\": {\"active\": \""
     << simd::LevelName(simd::ActiveLevel()) << "\", \"rows\": [";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& row = kernels[i];
    if (i > 0) os << ", ";
    os << "{\"kernel\": \"" << row.kernel << "\", \"bits\": " << row.bits
       << ", \"generic_ns\": " << bench::Fmt(row.generic_ns, 1)
       << ", \"active_ns\": " << bench::Fmt(row.active_ns, 1)
       << ", \"speedup\": "
       << bench::Fmt(row.generic_ns / row.active_ns, 2) << "}";
  }
  os << "], \"ranged_2x_at_64k\": " << (ranged_2x_at_64k ? "true" : "false")
     << "}, \"superopt\": {\"n\": " << n << ", \"cases\": [";
  for (size_t i = 0; i < superopt.size(); ++i) {
    const SuperoptCase& sc = superopt[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << sc.name << "\""
       << ", \"instrs_before\": " << sc.instrs_before
       << ", \"instrs_after\": " << sc.instrs_after
       << ", \"fused\": " << sc.fused << ", \"dropped\": " << sc.dropped
       << ", \"hoisted\": " << sc.hoisted << ", \"sunk\": " << sc.sunk
       << ", \"base_us\": " << bench::Fmt(sc.base_seconds * 1e6, 2)
       << ", \"opt_us\": " << bench::Fmt(sc.opt_seconds * 1e6, 2)
       << ", \"speedup\": "
       << bench::Fmt(sc.base_seconds / sc.opt_seconds, 2)
       << ", \"rewritten\": " << (sc.rewritten ? "true" : "false")
       << ", \"match\": " << (sc.match ? "true" : "false") << "}";
  }
  os << "]}, \"superopt_not_slower\": "
     << (superopt_not_slower ? "true" : "false") << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (per-level scaling on demand).

void BM_OrRangeActive(benchmark::State& state) {
  Rng rng(3);
  const int bits = static_cast<int>(state.range(0));
  const Bitset a = RandomBits(bits, &rng);
  Bitset dst = RandomBits(bits, &rng);
  for (auto _ : state) {
    dst.OrRange(a, 0, bits);
    benchmark::DoNotOptimize(dst);
  }
  state.SetComplexityN(bits);
}
BENCHMARK(BM_OrRangeActive)->RangeMultiplier(8)->Range(4096, 1 << 21)
    ->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E13: SIMD kernels + bytecode superoptimizer",
      "vectorized word kernels cut the constant factor of every bulk "
      "boolean pass, and beam-searched bytecode rewrites (fusion, dead "
      "code, hoisting) are equivalent and never slower [ISSUE 6]",
      "ranged kernels generic-vs-detected level at 64k/1M bits; compiled "
      "programs base-vs-superoptimized on exp12-style DAG workloads at "
      "fixed n, bit-for-bit checked");
  bool ranged_2x_at_64k = false;
  const auto kernels = xptc::KernelReport(&ranged_2x_at_64k);
  const int n = xptc::bench::SmokeMode() ? 2000 : 50000;
  bool all_match = true;
  const auto superopt = xptc::SuperoptReport(n, &all_match);
  // Regression gate (see ci.yml): optimized programs must not lose to
  // their base forms in aggregate; 2% tolerance absorbs timer noise on
  // the pointer-equal (unchanged) cases.
  double base_total = 0, opt_total = 0;
  for (const auto& sc : superopt) {
    base_total += sc.base_seconds;
    opt_total += sc.opt_seconds;
  }
  const bool superopt_not_slower = opt_total <= base_total * 1.02;
  std::printf("\nsuperopt_not_slower: %s (base %.3f ms vs opt %.3f ms)\n",
              superopt_not_slower ? "true" : "false", base_total * 1e3,
              opt_total * 1e3);
  if (!ranged_2x_at_64k &&
      xptc::simd::ActiveLevel() != xptc::simd::Level::kGeneric) {
    std::printf("WARNING: a ranged kernel fell under 2x at 64k bits on "
                "this host (see table)\n");
  }
  xptc::bench::UpdateBenchJson(
      xptc::bench::KernelsJsonPath(), "exp13_kernels",
      xptc::SectionJson(kernels, ranged_2x_at_64k, superopt, n,
                        superopt_not_slower));
  xptc::bench::UpdateBenchJson(xptc::bench::KernelsJsonPath(),
                               "obs_registry",
                               xptc::obs::Registry::Default().Json());
  std::printf("(recorded in %s)\n", xptc::bench::KernelsJsonPath().c_str());
  if (!all_match) return 1;
  if (!superopt_not_slower) {
    std::fprintf(stderr,
                 "FATAL: superoptimized programs slower than base in "
                 "aggregate (%.3f ms vs %.3f ms)\n",
                 opt_total * 1e3, base_total * 1e3);
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
