// E4 — RegXPath(W) ⊆ FO(MTC) (Theorem T1, constructive direction) and the
// complexity gap between the two presentations: the translation preserves
// semantics, its output is linear in the query, but *naive FO model
// checking* pays an exponential in quantifier rank while the XPath engine
// stays polynomial — the reason the XPath side is the algorithmic one.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "logic/fo_eval.h"
#include "logic/xpath_to_fo.h"
#include "xpath/eval.h"
#include "xpath/eval_naive.h"
#include "xpath/generator.h"

namespace xptc {
namespace {

void TranslationReport() {
  std::printf("\nTranslation agreement and size (30 queries per depth, 4 "
              "random trees of <= 8 nodes):\n");
  bench::PrintRow({"depth", "avg |query|", "avg |formula|", "avg TC ops",
                   "avg rank", "agreement"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  for (int depth = 1; depth <= 3; ++depth) {
    Rng rng(2000 + static_cast<uint64_t>(depth));
    QueryGenOptions options;
    options.max_depth = depth;
    int64_t query_size = 0, formula_size = 0, tc_ops = 0, rank = 0;
    int64_t checked = 0, agreed = 0;
    for (int i = 0; i < 30; ++i) {
      NodePtr query = GenerateNode(options, labels, &rng);
      FormulaPtr formula = NodeToFO(*query, 0);
      query_size += NodeSize(*query);
      formula_size += FormulaSize(*formula);
      tc_ops += CountTCOperators(*formula);
      rank += QuantifierRank(*formula);
      for (int t = 0; t < 4; ++t) {
        TreeGenOptions tree_options;
        tree_options.num_nodes = rng.NextInt(1, 8);
        const Tree tree = GenerateTree(tree_options, labels, &rng);
        ++checked;
        if (EvalFormulaUnary(tree, *formula, 0) == EvalNodeNaive(tree, *query)) {
          ++agreed;
        }
      }
    }
    bench::PrintRow({std::to_string(depth), bench::Fmt(query_size / 30.0, 1),
                     bench::Fmt(formula_size / 30.0, 1),
                     bench::Fmt(tc_ops / 30.0, 1),
                     bench::Fmt(rank / 30.0, 1),
                     bench::Fmt(100.0 * agreed / checked, 1) + "%"});
  }
}

void CrossoverReport() {
  std::printf("\nFO model checking vs. XPath evaluation (same query, both "
              "sides of T1), tree n = 12:\n");
  bench::PrintRow({"depth", "rank", "xpath us", "fo us", "fo/xpath"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  const Tree tree =
      bench::BenchTree(&alphabet, 12, TreeShape::kUniformRecursive, 17, 2);
  // φ_1 = <desc[a]>, φ_{d+1} = <desc[a and W(φ_d)]> — each level adds a TC
  // and a quantifier to the translation, driving the rank up one by one.
  NodePtr query = MakeSome(MakeFilter(MakeAxis(Axis::kDescendant),
                                      MakeLabel(labels[0])));
  for (int depth = 1; depth <= 4; ++depth) {
    if (depth > 1) {
      query = MakeSome(MakeFilter(
          MakeAxis(Axis::kDescendant),
          MakeAnd(MakeLabel(labels[0]), MakeWithin(query))));
    }
    FormulaPtr formula = NodeToFO(*query, 0);
    const double xpath_seconds =
        bench::MedianSeconds([&] { EvalNodeSet(tree, *query); }, 5);
    const double fo_seconds = bench::MedianSeconds(
        [&] { EvalFormulaUnary(tree, *formula, 0); }, 3);
    bench::PrintRow({std::to_string(depth),
                     std::to_string(QuantifierRank(*formula)),
                     bench::Fmt(xpath_seconds * 1e6, 1),
                     bench::Fmt(fo_seconds * 1e6, 1),
                     bench::Fmt(fo_seconds / xpath_seconds, 0)});
  }
  std::printf("Expected shape: the FO side pays a large constant-factor "
              "and worse growth at every depth.\n");

  std::printf("\nSame query (depth 2), growing tree — the gap widens "
              "with n:\n");
  bench::PrintRow({"n", "xpath us", "fo us", "fo/xpath"});
  NodePtr fixed = MakeSome(MakeFilter(
      MakeAxis(Axis::kDescendant),
      MakeAnd(MakeLabel(labels[0]),
              MakeWithin(MakeSome(MakeFilter(MakeAxis(Axis::kDescendant),
                                             MakeLabel(labels[0])))))));
  FormulaPtr fixed_formula = NodeToFO(*fixed, 0);
  for (int n : {8, 12, 16, 24, 32}) {
    const Tree grown =
        bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 18, 2);
    const double xpath_seconds =
        bench::MedianSeconds([&] { EvalNodeSet(grown, *fixed); }, 5);
    const double fo_seconds = bench::MedianSeconds(
        [&] { EvalFormulaUnary(grown, *fixed_formula, 0); }, 3);
    bench::PrintRow({std::to_string(n), bench::Fmt(xpath_seconds * 1e6, 1),
                     bench::Fmt(fo_seconds * 1e6, 1),
                     bench::Fmt(fo_seconds / xpath_seconds, 0)});
  }
  std::printf("Expected shape: the ratio grows with n — naive logic-side "
              "model checking is the wrong algorithmic presentation, which "
              "is why T1's XPath/automata side matters.\n");
}

void BM_FOModelCheck(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  Rng rng(44);
  QueryGenOptions options;
  options.max_depth = 2;
  NodePtr query = GenerateNode(options, labels, &rng);
  FormulaPtr formula = NodeToFO(*query, 0);
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 17, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalFormulaUnary(tree, *formula, 0));
  }
}
BENCHMARK(BM_FOModelCheck)->Arg(6)->Arg(10)->Arg(14);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E4: RegXPath(W) -> FO with monadic transitive closure",
      "every Regular XPath(W) query translates to an equivalent FO(MTC) "
      "formula of linear size [T1]; FO model checking is exponential in "
      "rank while XPath evaluation is polynomial",
      "compositional translation incl. TC for stars and subtree "
      "relativisation for W; agreement vs. the reference evaluator");
  xptc::TranslationReport();
  xptc::CrossoverReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
