// E16 — one-pass closure axis kernels (PR 9): interval/streamed closure
// evaluation vs the semi-naive star fixpoint it replaces.
//
// Three claims are measured:
//
//  1. Closure collapse: lowering `(axis)*` star bodies to the one-pass
//     closure ops (kDescFill / kAncMark / kSibChain) replaces an
//     O(depth)-round fixpoint with a single streamed kernel pass. On a
//     depth-4096 chain the vertical stars must be >= 10x faster (the
//     fixpoint pays ~depth rounds of full-bitset work); on shallow shapes
//     the collapse must never lose (the fixpoint converges in a few
//     rounds there, so the bar is parity, not a blowout).
//
//  2. Warm plans benefit: a program compiled *before* the collapse
//     existed (toggle off) and then re-superoptimized picks up the
//     closure op via the witness-checked collapse move — the PlanCache
//     re-superoptimization path, exercised directly.
//
//  3. Per-tree calibration never loses: the calibrated auto dispatch
//     (TreeCache's measured sparse/dense crossover) stays within 5% of
//     the fixed-constant policy on the exp14-style axis matrix.
//
// Every timed comparison is bit-for-bit checked across the fixpoint
// program, the collapsed program, the superoptimized program, and the
// interpreter in both toggle states; any mismatch dumps a replayable
// .case file and exits 1.
//
// BENCH_axis.json section schema ("exp16_closure_axes"):
//   {"smoke": bool,
//    "closure": {"cases": [{"shape": str, "n": int, "axis": str,
//                "fix_us": f, "clo_us": f, "speedup": f,
//                "star_rounds": int, "superopt_collapsed": bool,
//                "match": bool}, ...]},
//    "calibration": {"n": int, "child_crossover": int,
//                    "parent_crossover": int,
//                    "rows": [{"axis": str, "density": f, "default_us": f,
//                              "calibrated_us": f, "ratio": f}, ...],
//                    "calibration_within_1p05": bool},
//    "closure_not_slower": bool,     // CI gate: sum(clo) <= 1.02*sum(fix)
//    "closure_10x_chain4k": bool}    // CI gate: chain-4096 vertical stars

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exec/engine.h"
#include "exec/program.h"
#include "exec/superopt.h"
#include "obs/metrics.h"
#include "xpath/ast.h"
#include "xpath/axis_kernels.h"
#include "xpath/eval.h"

namespace xptc {
namespace {

// ---------------------------------------------------------------------------
// Part 1: star fixpoint vs collapsed closure op, per shape x axis.
//
// The plan is the raw `<(axis)*[L]>` — built from factories, not the
// parser/PlanCache, so the star survives to lowering and the toggle alone
// decides fixpoint vs closure. On the uniform/caterpillar shapes the seed
// label is BenchTree's `a` at ~1/3 density (the fixpoint converges in a
// few rounds there — parity territory). The chain is the adversarial
// regime: the seed is a SINGLE node at the far end of the star's
// direction of travel (deepest for child*, the root for parent*), so the
// fixpoint must walk all ~n rounds while the closure kernel stays one
// pass — that asymmetry is the 10x gate.

struct ClosureCase {
  std::string shape;
  int n = 0;
  Axis axis = Axis::kChild;
  double fix_seconds = 0;
  double clo_seconds = 0;
  int64_t star_rounds = 0;        // rounds the fixpoint actually ran
  bool superopt_collapsed = false;  // re-superopt shed the star entirely
  bool match = false;
};

struct ShapeSpec {
  std::string name;
  TreeShape shape;
  int n;
};

// A depth-n chain with label `deep` on the deepest node, `root` on the
// root, and `mid` everywhere else — the sparse seeds for the vertical
// star cases.
Tree SparseChain(int n, Symbol mid, Symbol deep, Symbol root) {
  TreeBuilder builder;
  for (int i = 0; i < n; ++i) {
    builder.Begin(i == 0 ? root : (i == n - 1 ? deep : mid));
  }
  for (int i = 0; i < n; ++i) builder.End();
  return std::move(builder).Finish().ValueOrDie();
}

std::vector<ClosureCase> ClosureReport(bool* all_ok) {
  // The chain stays at 4096 even in smoke: the 10x gate is defined there,
  // and the fixpoint side is only ~4k rounds of 64-word bitset work.
  std::vector<ShapeSpec> shapes = {
      {"chain", TreeShape::kChain, 4096},
      {"uniform", TreeShape::kUniformRecursive,
       bench::SmokeMode() ? 16384 : 65536},
      {"caterpillar", TreeShape::kCaterpillar,
       bench::SmokeMode() ? 4096 : 16384},
  };
  const std::vector<Axis> axes = {Axis::kChild, Axis::kParent,
                                  Axis::kNextSibling, Axis::kPrevSibling};
  const int inner = bench::SmokeMode() ? 3 : 10;
  std::vector<ClosureCase> results;
  Alphabet alphabet;
  const Symbol a = alphabet.Intern("a");
  const Symbol b = alphabet.Intern("b");
  const Symbol c = alphabet.Intern("c");
  for (const ShapeSpec& spec : shapes) {
    const bool is_chain = spec.shape == TreeShape::kChain;
    std::printf("\nClosure collapse on %s (n = %d%s): star fixpoint vs "
                "one-pass closure kernel:\n", spec.name.c_str(), spec.n,
                is_chain ? ", single-seed labels" : "");
    bench::PrintRow({"axis", "fix us", "closure us", "speedup", "rounds",
                     "collapsed", "match"});
    const Tree tree =
        is_chain ? SparseChain(spec.n, a, b, c)
                 : bench::BenchTree(&alphabet, spec.n, spec.shape, 11);
    EvalScratch scratch(tree);
    exec::ExecEngine engine(tree);
    for (Axis ax : axes) {
      // Chain vertical stars get the single far-end seed; everything else
      // filters on the ~1/3-density `a`.
      Symbol seed = a;
      if (is_chain && ax == Axis::kChild) seed = b;
      if (is_chain && ax == Axis::kParent) seed = c;
      NodePtr query = MakeSome(MakeFilter(MakeStar(MakeAxis(ax)),
                                          MakeLabel(seed)));
      // Toggle off: the star survives lowering — the pre-PR fixpoint
      // program. Toggle on (the default): lowering emits the closure op.
      axis::SetClosureCollapseForTesting(false);
      auto fix = exec::Program::Compile(query);
      axis::ResetClosureCollapseForTesting();
      auto clo = exec::Program::Compile(query);
      // The PlanCache re-superoptimization path: a warm pre-closure
      // program must pick up the collapse move (claim 2).
      auto sup = exec::Superoptimize(fix);

      ClosureCase result;
      result.shape = spec.name;
      result.n = spec.n;
      result.axis = ax;
      Bitset fix_bits(0), clo_bits(0), sup_bits(0);
      result.fix_seconds = bench::MedianSecondsN(
          [&] { fix_bits = engine.EvalGeneral(*fix); }, inner);
      result.star_rounds = engine.last_run().star_rounds_used;
      result.clo_seconds = bench::MedianSecondsN(
          [&] { clo_bits = engine.EvalGeneral(*clo); }, inner);
      // Re-superoptimization must shed the star: a distinct program that
      // runs in zero fixpoint rounds. (Re-lowering inside Superoptimize
      // already collapses; the beam's collapse move is the backstop for
      // stars that only become bare-axis after other rewrites.)
      sup_bits = engine.EvalGeneral(*sup);
      result.superopt_collapsed = sup.get() != fix.get() &&
                                  engine.last_run().star_rounds_used == 0;

      // Bit-for-bit: fixpoint, collapsed, superoptimized, and the
      // interpreter with the fast path both off and on.
      axis::SetClosureCollapseForTesting(false);
      Evaluator slow_eval(tree, &scratch);
      const Bitset interp_fix = slow_eval.EvalNode(*query);
      axis::ResetClosureCollapseForTesting();
      Evaluator fast_eval(tree, &scratch);
      const Bitset interp_clo = fast_eval.EvalNode(*query);
      result.match = fix_bits == clo_bits && fix_bits == sup_bits &&
                     fix_bits == interp_fix && fix_bits == interp_clo;

      bench::PrintRow(
          {AxisToString(ax), bench::Fmt(result.fix_seconds * 1e6, 1),
           bench::Fmt(result.clo_seconds * 1e6, 1),
           bench::Fmt(result.fix_seconds / result.clo_seconds, 1),
           std::to_string(result.star_rounds),
           result.superopt_collapsed ? "yes" : "NO",
           result.match ? "yes" : "MISMATCH"});
      if (!result.match) {
        *all_ok = false;
        const std::string path = bench::DumpMismatchCase(
            tree, alphabet, NodeToString(*query, alphabet),
            "exp16 closure case: fixpoint vs closure vs superopt vs "
            "interpreter");
        std::fprintf(stderr, "FATAL: engines disagree on %s/%s (case: %s)\n",
                     spec.name.c_str(), AxisToString(ax), path.c_str());
      }
      if (!result.superopt_collapsed) {
        *all_ok = false;
        std::fprintf(stderr,
                     "FATAL: re-superoptimizing the pre-closure %s/%s "
                     "program did not collapse its star (warm PlanCache "
                     "entries would never pick up the closure kernels)\n",
                     spec.name.c_str(), AxisToString(ax));
      }
      results.push_back(std::move(result));
    }
  }
  std::printf("Expected shape: chain child/parent rows >= 10x (the fixpoint "
              "pays ~depth rounds), every other row >= ~1x; the rounds "
              "column is the depth the fixpoint walked; collapsed on every "
              "row.\n");
  return results;
}

// ---------------------------------------------------------------------------
// Part 2: calibrated auto dispatch vs the fixed-constant policy.
//
// CalibrateCrossover replaces kDenseCrossover = 8 with a measured
// per-tree ratio; the acceptance bar is "never loses by > 5%" on the
// exp14-style matrix (child/parent x sparse/dense frontiers). Cells are
// re-measured up to 3 times keeping the best ratio — a systematic loss
// fails every attempt, a scheduler blip does not (same protocol as
// exp14's auto gate).

struct CalibrationRow {
  Axis axis = Axis::kChild;
  double density = 0;
  double default_seconds = 0;
  double calibrated_seconds = 0;
};

std::vector<CalibrationRow> CalibrationReport(int n,
                                              axis::Calibration* crossover,
                                              bool* within_1p05) {
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 13);
  const axis::Calibration calibration = axis::CalibrateCrossover(tree);
  *crossover = calibration;
  std::printf("\nCalibrated crossovers on uniform n = %d: measured "
              "child %d / parent %d (fixed default %d):\n", n,
              calibration.child_dense_crossover,
              calibration.parent_dense_crossover, axis::kDenseCrossover);
  bench::PrintRow({"axis", "density", "default us", "calibrated us",
                   "ratio"});
  const int inner = bench::SmokeMode() ? 20 : 50;
  std::vector<CalibrationRow> rows;
  for (Axis ax : {Axis::kChild, Axis::kParent}) {
    for (double density : {0.02, 0.95}) {
      CalibrationRow row;
      row.axis = ax;
      row.density = density;
      Rng rng(17);
      Bitset sources(tree.size());
      for (int v = 0; v < tree.size(); ++v) {
        if (rng.NextBool(density)) sources.Set(v);
      }
      Bitset out_default(tree.size()), out_calibrated(tree.size());
      for (int attempt = 0; attempt < 3; ++attempt) {
        const double default_seconds = bench::MedianSecondsN(
            [&] {
              out_default.ResetAll();
              AxisImageInto(tree, ax, sources, 0, tree.size(), &out_default);
            },
            inner);
        const double calibrated_seconds = bench::MedianSecondsN(
            [&] {
              out_calibrated.ResetAll();
              AxisImageInto(tree, ax, sources, 0, tree.size(),
                            &out_calibrated, calibration);
            },
            inner);
        if (attempt == 0 ||
            calibrated_seconds / default_seconds <
                row.calibrated_seconds / row.default_seconds) {
          row.default_seconds = default_seconds;
          row.calibrated_seconds = calibrated_seconds;
        }
        if (row.calibrated_seconds <= row.default_seconds * 1.05) break;
      }
      if (!(out_default == out_calibrated)) {
        std::fprintf(stderr,
                     "FATAL: calibrated dispatch changed the %s image\n",
                     AxisToString(ax));
        std::exit(1);
      }
      if (row.calibrated_seconds > row.default_seconds * 1.05) {
        *within_1p05 = false;
      }
      bench::PrintRow({AxisToString(ax), bench::Fmt(density, 2),
                       bench::Fmt(row.default_seconds * 1e6, 2),
                       bench::Fmt(row.calibrated_seconds * 1e6, 2),
                       bench::Fmt(row.calibrated_seconds /
                                      row.default_seconds, 3)});
      rows.push_back(row);
    }
  }
  std::printf("Expected shape: every ratio <= 1.05 — the measured "
              "crossover may shift the dense handoff but must never "
              "lose to the constant.\n");
  return rows;
}

// ---------------------------------------------------------------------------
// JSON section.

std::string SectionJson(const std::vector<ClosureCase>& closure,
                        const std::vector<CalibrationRow>& calibration,
                        int calibration_n, const axis::Calibration& crossover,
                        bool calibration_ok, bool closure_not_slower,
                        bool closure_10x) {
  std::ostringstream os;
  os << "{\"smoke\": " << (bench::SmokeMode() ? "true" : "false");
  os << ", \"closure\": {\"cases\": [";
  for (size_t i = 0; i < closure.size(); ++i) {
    const ClosureCase& c = closure[i];
    if (i > 0) os << ", ";
    os << "{\"shape\": \"" << c.shape << "\", \"n\": " << c.n
       << ", \"axis\": \"" << AxisToString(c.axis) << "\""
       << ", \"fix_us\": " << bench::Fmt(c.fix_seconds * 1e6, 2)
       << ", \"clo_us\": " << bench::Fmt(c.clo_seconds * 1e6, 2)
       << ", \"speedup\": " << bench::Fmt(c.fix_seconds / c.clo_seconds, 2)
       << ", \"star_rounds\": " << c.star_rounds
       << ", \"superopt_collapsed\": "
       << (c.superopt_collapsed ? "true" : "false")
       << ", \"match\": " << (c.match ? "true" : "false") << "}";
  }
  os << "]}, \"calibration\": {\"n\": " << calibration_n
     << ", \"child_crossover\": " << crossover.child_dense_crossover
     << ", \"parent_crossover\": " << crossover.parent_dense_crossover
     << ", \"rows\": [";
  for (size_t i = 0; i < calibration.size(); ++i) {
    const CalibrationRow& row = calibration[i];
    if (i > 0) os << ", ";
    os << "{\"axis\": \"" << AxisToString(row.axis) << "\""
       << ", \"density\": " << bench::Fmt(row.density, 2)
       << ", \"default_us\": " << bench::Fmt(row.default_seconds * 1e6, 3)
       << ", \"calibrated_us\": "
       << bench::Fmt(row.calibrated_seconds * 1e6, 3)
       << ", \"ratio\": "
       << bench::Fmt(row.calibrated_seconds / row.default_seconds, 3)
       << "}";
  }
  os << "], \"calibration_within_1p05\": "
     << (calibration_ok ? "true" : "false") << "}";
  os << ", \"closure_not_slower\": "
     << (closure_not_slower ? "true" : "false");
  os << ", \"closure_10x_chain4k\": " << (closure_10x ? "true" : "false")
     << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (complexity fits on demand): the collapsed
// closure evaluation should be ~linear in n on chains, the fixpoint
// ~quadratic.

void BM_ClosureChain(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = MakeSome(MakeFilter(MakeStar(MakeAxis(Axis::kChild)),
                                      MakeLabel(alphabet.Intern("a"))));
  auto program = exec::Program::Compile(query);
  const Tree tree = bench::BenchTree(
      &alphabet, static_cast<int>(state.range(0)), TreeShape::kChain, 11);
  exec::ExecEngine engine(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalGeneral(*program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClosureChain)->RangeMultiplier(4)->Range(256, 16384)
    ->Complexity();

void BM_FixpointChain(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query = MakeSome(MakeFilter(MakeStar(MakeAxis(Axis::kChild)),
                                      MakeLabel(alphabet.Intern("a"))));
  axis::SetClosureCollapseForTesting(false);
  auto program = exec::Program::Compile(query);
  axis::ResetClosureCollapseForTesting();
  const Tree tree = bench::BenchTree(
      &alphabet, static_cast<int>(state.range(0)), TreeShape::kChain, 11);
  exec::ExecEngine engine(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalGeneral(*program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FixpointChain)->RangeMultiplier(4)->Range(256, 16384)
    ->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E16: one-pass closure axis kernels",
      "closure axes ([[axis*]]) evaluate in one interval/streamed kernel "
      "pass instead of an O(depth)-round star fixpoint, and warm plans "
      "pick the collapse up through re-superoptimization [T2]",
      "raw <(axis)*[a]> plans compiled with the collapse off (fixpoint "
      "kStar) and on (closure op) on chain/uniform/caterpillar trees; "
      "calibrated-vs-default auto dispatch on the exp14 axis matrix");
  bool all_ok = true;
  const auto closure = xptc::ClosureReport(&all_ok);

  const int calibration_n = 65536;
  xptc::axis::Calibration crossover;
  bool calibration_ok = true;
  const auto calibration =
      xptc::CalibrationReport(calibration_n, &crossover, &calibration_ok);

  // Gate 1: in aggregate the closure kernels must not lose to the
  // fixpoint (2% tolerance — shallow shapes are parity cases where the
  // fixpoint converges in a couple of rounds).
  double fix_total = 0, clo_total = 0;
  for (const auto& c : closure) {
    fix_total += c.fix_seconds;
    clo_total += c.clo_seconds;
  }
  const bool closure_not_slower = clo_total <= fix_total * 1.02;
  // Gate 2: the headline claim — vertical stars on the depth-4096 chain
  // are >= 10x faster collapsed.
  bool closure_10x = true;
  for (const auto& c : closure) {
    if (c.shape == "chain" &&
        (c.axis == xptc::Axis::kChild || c.axis == xptc::Axis::kParent) &&
        c.fix_seconds < c.clo_seconds * 10) {
      closure_10x = false;
      std::fprintf(stderr,
                   "FATAL: chain-%d %s* closure speedup %.1fx < 10x\n", c.n,
                   xptc::AxisToString(c.axis),
                   c.fix_seconds / c.clo_seconds);
    }
  }

  xptc::bench::UpdateBenchJson(
      xptc::bench::AxisJsonPath(), "exp16_closure_axes",
      xptc::SectionJson(closure, calibration, calibration_n, crossover,
                        calibration_ok, closure_not_slower, closure_10x));
  xptc::bench::UpdateBenchJson(xptc::bench::AxisJsonPath(), "obs_registry",
                               xptc::obs::Registry::Default().Json());
  std::printf("(recorded in %s)\n", xptc::bench::AxisJsonPath().c_str());
  if (!all_ok) return 1;
  if (!closure_not_slower) {
    std::fprintf(stderr,
                 "FATAL: closure kernels slower than the star fixpoint in "
                 "aggregate (%.3f ms vs %.3f ms)\n", clo_total * 1e3,
                 fix_total * 1e3);
    return 1;
  }
  if (!closure_10x) return 1;
  if (!calibration_ok) {
    std::fprintf(stderr,
                 "FATAL: calibrated dispatch lost to the fixed crossover "
                 "by more than 5%% (see rows above)\n");
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
