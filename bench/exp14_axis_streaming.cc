// E14 — density-adaptive streaming axis kernels and profile-fed
// re-superoptimization (ISSUE 7).
//
// Three claims are measured:
//
//  1. Dense-frontier streaming: on a dense source set the child image is
//     one sequential gather over the parent column (out[w] bit b =
//     sources[parent[64w+b]]) and the parent image its scatter dual —
//     both stream the tree columns instead of chasing
//     first_child/next_sibling per source node. On dense frontiers at
//     n >= 64k the streamed path should be >= 2x the ctz-iteration
//     (sparse) path; on sparse sources the auto dispatch must fall back
//     to ctz iteration and tie.
//
//  2. End to end: child/parent-heavy compiled workloads (star fixpoints
//     whose frontiers saturate) inherit the win through the auto
//     dispatch with no query change.
//
//  3. Profile-fed reopt: PlanCache::RecordExecution accumulates measured
//     per-instruction execution counts; once a plan is warm the next hit
//     re-runs the beam-search superoptimizer with the observed profile
//     (measured star rounds instead of the static guess) and re-caches
//     on a modeled-cost win. The workload is a star whose fixpoint
//     converges in zero rounds on the measured data, so the reopt fires
//     deterministically (the sink rewrite moves the star's setup into its
//     never-entered body); the re-cached program must be bit-for-bit
//     equivalent.
//
// Every sparse/dense/auto result pair is compared bit for bit; any
// mismatch dumps a replayable .case file (e2e cases) and exits 1, as
// does a violated `axis_streaming_not_slower` gate (auto dispatch must
// not lose to forced-sparse in aggregate; 2% tolerance for timer noise).
//
// BENCH_axis.json section schema ("exp14_axis_streaming"):
//   {"smoke": bool,
//    "microbench": {"rows": [{"axis": str, "n": int, "density": f,
//                   "sparse_ns": f, "dense_ns": f, "auto_ns": f,
//                   "auto_path": "sparse"|"dense", "speedup": f,
//                   "match": bool}, ...]},
//    "axis_dense_2x": bool,
//    "auto_within_1p15_of_best": bool,
//    "e2e": {"n": int, "cases": [{"name": str, "query": str,
//            "sparse_us": f, "auto_us": f, "speedup": f,
//            "match": bool}, ...]},
//    "axis_streaming_not_slower": bool,
//    "profile_reopt": {"reopts": int, "program_changed": bool,
//                      "match": bool}}

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/bitset.h"
#include "common/rng.h"
#include "common/simd.h"
#include "exec/engine.h"
#include "exec/program.h"
#include "obs/metrics.h"
#include "workload/plan_cache.h"
#include "xpath/axis_kernels.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

// ---------------------------------------------------------------------------
// Part 1: axis-image microbench, forced-sparse vs forced-dense vs auto.

struct AxisRow {
  std::string axis;
  int n = 0;
  double density = 0;
  double sparse_ns = 0;
  double dense_ns = 0;
  double auto_ns = 0;
  bool auto_dense = false;  // which path the auto dispatch chose
  bool match = false;
};

Bitset RandomSources(int n, double density, Rng* rng) {
  Bitset out(n);
  for (int i = 0; i < n; ++i) {
    if (rng->NextBool(density)) out.Set(i);
  }
  return out;
}

double ImageNs(const Tree& tree, Axis axis, const Bitset& sources,
               axis::Mode mode, Bitset* out, int reps,
               const axis::Calibration& cal) {
  axis::SetModeForTesting(mode);
  const double seconds = bench::MedianSecondsN(
      [&] {
        out->ResetAll();
        AxisImageInto(tree, axis, sources, 0, tree.size(), out, cal);
      },
      reps);
  axis::ResetModeForTesting();
  benchmark::DoNotOptimize(out->Count());
  return seconds * 1e9;
}

std::vector<AxisRow> MicrobenchReport(bool* axis_dense_2x, bool* all_match) {
  std::printf("\nAxis images, ctz-iteration vs streamed column scan "
              "(uniform random tree, full window):\n");
  bench::PrintRow({"axis", "n", "density", "sparse ns", "dense ns",
                   "auto ns", "auto path", "speedup", "match"});
  std::vector<int> sizes = {65536, 1 << 20};
  if (bench::SmokeMode()) sizes = {16384, 65536};
  const Axis axes[] = {Axis::kChild, Axis::kParent};
  auto& registry = obs::Registry::Default();
  std::vector<AxisRow> rows;
  *axis_dense_2x = true;
  for (int n : sizes) {
    Alphabet alphabet;
    const Tree tree =
        bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 14);
    // Auto dispatch runs under the per-tree calibrated crossovers — the
    // production configuration (TreeCache calibrates at admission). The
    // fixed constant cannot satisfy both axes at 1M nodes: the child
    // chase turns cache-hostile while its dense gather stays ~0.4 ns per
    // node, so the child crossover calibrates far above the default.
    const axis::Calibration cal = axis::CalibrateCrossover(tree);
    const int reps = n > 100000 ? 30 : 200;
    for (double density : {0.02, 0.95}) {
      Rng rng(21);
      const Bitset sources = RandomSources(n, density, &rng);
      for (Axis axis : axes) {
        AxisRow row;
        row.axis = AxisToString(axis);
        row.n = n;
        row.density = density;
        Bitset sparse_out(n), dense_out(n), auto_out(n);
        // Gated cells (n >= 64k, see main) retry on an over-threshold
        // auto/best ratio: a systematic regression fails every attempt,
        // a noisy-neighbour spike does not survive three.
        for (int attempt = 0; attempt < 3; ++attempt) {
          AxisRow take = row;
          take.sparse_ns = ImageNs(tree, axis, sources, axis::Mode::kSparse,
                                   &sparse_out, reps, cal);
          take.dense_ns = ImageNs(tree, axis, sources, axis::Mode::kDense,
                                  &dense_out, reps, cal);
          const std::string dense_counter =
              "axis." + row.axis + ".dense_path";
          const int64_t dense_before =
              registry.counter(dense_counter).value();
          take.auto_ns = ImageNs(tree, axis, sources, axis::Mode::kAuto,
                                 &auto_out, reps, cal);
          take.auto_dense =
              registry.counter(dense_counter).value() > dense_before;
          const double best = std::min(take.sparse_ns, take.dense_ns);
          if (attempt == 0 ||
              take.auto_ns / std::max(best, 1.0) <
                  row.auto_ns / std::max(std::min(row.sparse_ns,
                                                  row.dense_ns),
                                         1.0)) {
            row = take;
          }
          if (n < 65536 ||
              row.auto_ns <=
                  std::min(row.sparse_ns, row.dense_ns) * 1.15) {
            break;
          }
        }
        row.match = sparse_out == dense_out && sparse_out == auto_out;
        const double speedup = row.sparse_ns / row.auto_ns;
        bench::PrintRow({row.axis, std::to_string(n), bench::Fmt(density, 2),
                         bench::Fmt(row.sparse_ns, 0),
                         bench::Fmt(row.dense_ns, 0),
                         bench::Fmt(row.auto_ns, 0),
                         row.auto_dense ? "dense" : "sparse",
                         bench::Fmt(speedup, 2) + "x",
                         row.match ? "yes" : "MISMATCH"});
        if (!row.match) {
          *all_match = false;
          std::fprintf(stderr,
                       "FATAL: axis %s image disagrees across dispatch "
                       "modes (n=%d density=%.2f)\n",
                       row.axis.c_str(), n, density);
        }
        // The 2x claim is judged on dense frontiers at n >= 64k, where
        // the column scan amortises; the auto path must also have picked
        // the dense kernel there for the claim to be about streaming.
        if (density > 0.5 && n >= 65536 &&
            (!row.auto_dense || speedup < 2.0)) {
          *axis_dense_2x = false;
        }
        rows.push_back(std::move(row));
      }
    }
  }
  std::printf("Expected shape: >= 2x for child/parent on the dense "
              "frontier at n >= 64k (sequential column scan vs pointer "
              "chasing); sparse sources tie — auto stays on ctz "
              "iteration.\n");
  return rows;
}

// ---------------------------------------------------------------------------
// Part 2: end to end — child/parent-heavy compiled workloads under the
// auto dispatch vs forced-sparse.

struct E2eCase {
  std::string name;
  std::string text;
  double sparse_seconds = 0;
  double auto_seconds = 0;
  bool match = false;
};

std::vector<E2eCase> E2eReport(int n, bool* all_match) {
  std::printf("\nEnd-to-end compiled queries, forced-sparse vs auto "
              "dispatch (uniform random tree, n = %d):\n", n);
  bench::PrintRow({"case", "sparse us", "auto us", "speedup", "match"});
  std::vector<E2eCase> cases = {
      // Star fixpoints: the frontier saturates within a few rounds, so
      // most of the child images run dense.
      {"child_star", "W(<child[a]>) or W(<child[b]>)"},
      {"child_chain", "<child[a]/child[b]> or <child[b]/child[c]> or "
                      "<child[c]/child[a]>"},
      {"parent_heavy", "<parent[a]> and (<parent[b]> or not "
                       "<parent[c]/parent[a]>)"},
      {"mixed_updown", "W(<child[a and <parent[b]>]>)"},
  };
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 15);
  exec::ExecEngine engine(tree);
  const int inner = bench::SmokeMode() ? 3 : 10;
  for (E2eCase& ec : cases) {
    NodePtr query = ParseNode(ec.text, &alphabet).ValueOrDie();
    auto program = exec::Program::Compile(query);
    Bitset sparse_bits(0), auto_bits(0);
    axis::SetModeForTesting(axis::Mode::kSparse);
    ec.sparse_seconds = bench::MedianSecondsN(
        [&] { sparse_bits = engine.EvalGeneral(*program); }, inner);
    axis::ResetModeForTesting();
    ec.auto_seconds = bench::MedianSecondsN(
        [&] { auto_bits = engine.EvalGeneral(*program); }, inner);
    ec.match = sparse_bits == auto_bits;
    bench::PrintRow({ec.name, bench::Fmt(ec.sparse_seconds * 1e6, 1),
                     bench::Fmt(ec.auto_seconds * 1e6, 1),
                     bench::Fmt(ec.sparse_seconds / ec.auto_seconds, 2) +
                         "x",
                     ec.match ? "yes" : "MISMATCH"});
    if (!ec.match) {
      *all_match = false;
      const std::string path = bench::DumpMismatchCase(
          tree, alphabet, ec.text,
          "exp14 e2e case: forced-sparse vs auto axis dispatch");
      std::fprintf(stderr, "FATAL: results disagree on %s (case: %s)\n",
                   ec.name.c_str(), path.c_str());
    }
  }
  std::printf("Expected shape: the star and chain cases lean on dense "
              "frontiers and speed up; no case may slow down beyond "
              "noise.\n");
  return cases;
}

// ---------------------------------------------------------------------------
// Part 3: profile-fed re-superoptimization through the plan cache.

struct ReoptReport {
  int64_t reopts = 0;
  bool program_changed = false;
  bool match = false;
};

ReoptReport ProfileReoptReport(int n) {
  std::printf("\nProfile-fed re-superoptimization (uniform tree, n = %d):\n",
              n);
  ReoptReport report;
  Alphabet alphabet;
  PlanCache cache;
  // A path star whose fixpoint converges in zero rounds on this data: the
  // label `c` is absent from the two-label tree, so the star's frontier
  // is empty and its body never runs. The static model prices the body at
  // `star_round_estimate` rounds and keeps the body-only label mask in
  // main; the measured profile shows zero rounds, so the superoptimizer
  // sinks that setup into the (never-entered) body — a data-dependent win
  // only a profile can surface. The reopt must fire exactly once here.
  const std::string text = "<(child[a]/desc)*[c]>";
  auto compiled = cache.ParseCompiled(text, &alphabet).ValueOrDie();
  const Tree tree = bench::BenchTree(&alphabet, n,
                                     TreeShape::kUniformRecursive, 16,
                                     /*num_labels=*/2);
  exec::ExecEngine engine(tree);
  const Bitset baseline = engine.EvalGeneral(*compiled.program);
  const std::vector<int64_t>& execs = engine.last_run().instr_execs;
  for (int i = 0; i < PlanCache::kWarmProfiledRuns; ++i) {
    cache.RecordExecution(&alphabet, compiled, execs);
  }
  auto warmed = cache.ParseCompiled(text, &alphabet).ValueOrDie();
  report.reopts = static_cast<int64_t>(cache.stats().profile_reopts);
  report.program_changed = warmed.program != compiled.program;
  report.match = engine.EvalGeneral(*warmed.program) == baseline;
  std::printf("  profile reopts: %lld, program %s (sunk=%d), results %s\n",
              static_cast<long long>(report.reopts),
              report.program_changed ? "re-cached" : "unchanged",
              warmed.program->pre_superopt() != nullptr
                  ? warmed.program->superopt_stats().sunk
                  : 0,
              report.match ? "match" : "MISMATCH");
  std::printf("Expected shape: the warm hit re-runs the superoptimizer "
              "under the measured profile and re-caches a cheaper program "
              "(the cold star's setup sinks into its body); the rewrite "
              "must be invisible in results.\n");
  return report;
}

// ---------------------------------------------------------------------------
// JSON section.

std::string SectionJson(const std::vector<AxisRow>& rows, bool axis_dense_2x,
                        bool auto_within_best,
                        const std::vector<E2eCase>& e2e, int e2e_n,
                        bool not_slower, const ReoptReport& reopt) {
  std::ostringstream os;
  os << "{\"smoke\": " << (bench::SmokeMode() ? "true" : "false");
  os << ", \"microbench\": {\"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const AxisRow& row = rows[i];
    if (i > 0) os << ", ";
    os << "{\"axis\": \"" << row.axis << "\", \"n\": " << row.n
       << ", \"density\": " << bench::Fmt(row.density, 2)
       << ", \"sparse_ns\": " << bench::Fmt(row.sparse_ns, 0)
       << ", \"dense_ns\": " << bench::Fmt(row.dense_ns, 0)
       << ", \"auto_ns\": " << bench::Fmt(row.auto_ns, 0)
       << ", \"auto_path\": \"" << (row.auto_dense ? "dense" : "sparse")
       << "\", \"speedup\": "
       << bench::Fmt(row.sparse_ns / row.auto_ns, 2)
       << ", \"match\": " << (row.match ? "true" : "false") << "}";
  }
  os << "]}, \"axis_dense_2x\": " << (axis_dense_2x ? "true" : "false")
     << ", \"auto_within_1p15_of_best\": "
     << (auto_within_best ? "true" : "false")
     << ", \"e2e\": {\"n\": " << e2e_n << ", \"cases\": [";
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2eCase& ec = e2e[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << ec.name << "\", \"query\": \"" << ec.text
       << "\", \"sparse_us\": " << bench::Fmt(ec.sparse_seconds * 1e6, 2)
       << ", \"auto_us\": " << bench::Fmt(ec.auto_seconds * 1e6, 2)
       << ", \"speedup\": "
       << bench::Fmt(ec.sparse_seconds / ec.auto_seconds, 2)
       << ", \"match\": " << (ec.match ? "true" : "false") << "}";
  }
  os << "]}, \"axis_streaming_not_slower\": "
     << (not_slower ? "true" : "false")
     << ", \"profile_reopt\": {\"reopts\": " << reopt.reopts
     << ", \"program_changed\": "
     << (reopt.program_changed ? "true" : "false")
     << ", \"match\": " << (reopt.match ? "true" : "false") << "}}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (per-mode scaling on demand).

void BM_ChildImageAuto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 14);
  Rng rng(5);
  const Bitset sources = RandomSources(n, 0.9, &rng);
  Bitset out(n);
  for (auto _ : state) {
    out.ResetAll();
    AxisImageInto(tree, Axis::kChild, sources, 0, n, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ChildImageAuto)->RangeMultiplier(8)->Range(4096, 1 << 20)
    ->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E14: density-adaptive streaming axis kernels",
      "dense-frontier axis images stream the tree columns (gather/scatter "
      "over parent[]) instead of chasing sibling pointers per source, and "
      "warm plans re-superoptimize under their measured execution profile "
      "[ISSUE 7]",
      "child/parent images forced-sparse vs forced-dense vs auto at "
      "64k/1M nodes across source densities; compiled child/parent-heavy "
      "workloads sparse-vs-auto at fixed n; a warmed PlanCache plan "
      "re-superoptimized under its recorded profile; all bit-for-bit "
      "checked");
  bool axis_dense_2x = false;
  bool all_match = true;
  const auto rows = xptc::MicrobenchReport(&axis_dense_2x, &all_match);
  const int e2e_n = xptc::bench::SmokeMode() ? 4000 : 100000;
  const auto e2e = xptc::E2eReport(e2e_n, &all_match);
  const auto reopt =
      xptc::ProfileReoptReport(xptc::bench::SmokeMode() ? 2000 : 20000);
  if (!reopt.match) all_match = false;
  // Regression gate (see ci.yml): the auto dispatch must not lose to the
  // always-sparse baseline in aggregate — on sparse sources it IS the
  // sparse path plus one popcount, on dense sources it must win; 2%
  // tolerance absorbs timer noise.
  double sparse_total = 0, auto_total = 0;
  for (const auto& row : rows) {
    sparse_total += row.sparse_ns;
    auto_total += row.auto_ns;
  }
  for (const auto& ec : e2e) {
    sparse_total += ec.sparse_seconds * 1e9;
    auto_total += ec.auto_seconds * 1e9;
  }
  const bool not_slower = auto_total <= sparse_total * 1.02;
  // Per-row gate: on every (axis, n, density) cell at n >= 64k the auto
  // dispatch must land within 15% of the better forced mode — this is
  // what the sampled density probe buys (a full popcount pre-pass paid a
  // whole extra O(n/64) scan on sparse windows, visibly losing to
  // forced-sparse at 64k). Sub-64k cells run in single-digit µs, where
  // host noise alone exceeds the 15% band, so they print but do not gate.
  bool auto_within_best = true;
  for (const auto& row : rows) {
    if (row.n < 65536) continue;
    const double best_ns = std::min(row.sparse_ns, row.dense_ns);
    if (row.auto_ns > best_ns * 1.15) {
      auto_within_best = false;
      std::fprintf(stderr,
                   "auto_within_1p15_of_best violated: axis %s n=%d "
                   "density=%.2f auto %.0f ns vs best %.0f ns\n",
                   row.axis.c_str(), row.n, row.density, row.auto_ns,
                   best_ns);
    }
  }
  std::printf("\naxis_streaming_not_slower: %s (sparse %.3f ms vs auto "
              "%.3f ms)\n",
              not_slower ? "true" : "false", sparse_total * 1e-6,
              auto_total * 1e-6);
  std::printf("auto_within_1p15_of_best: %s\n",
              auto_within_best ? "true" : "false");
  std::printf("axis_dense_2x: %s\n", axis_dense_2x ? "true" : "false");
  if (!axis_dense_2x) {
    std::printf("WARNING: a dense-frontier child/parent image fell under "
                "2x at n >= 64k on this host (see table)\n");
  }
  xptc::bench::UpdateBenchJson(
      xptc::bench::AxisJsonPath(), "exp14_axis_streaming",
      xptc::SectionJson(rows, axis_dense_2x, auto_within_best, e2e, e2e_n,
                        not_slower, reopt));
  xptc::bench::UpdateBenchJson(xptc::bench::AxisJsonPath(), "obs_registry",
                               xptc::obs::Registry::Default().Json());
  std::printf("(recorded in %s)\n", xptc::bench::AxisJsonPath().c_str());
  if (!all_match) return 1;
  // The reopt scenario is deterministic (a zero-round star the static
  // model cannot see); the warm hit must fire the profile reopt.
  if (reopt.reopts < 1 || !reopt.program_changed) {
    std::fprintf(stderr,
                 "FATAL: profile-fed reopt did not fire on the zero-round "
                 "star workload (reopts=%lld, changed=%d)\n",
                 static_cast<long long>(reopt.reopts),
                 reopt.program_changed ? 1 : 0);
    return 1;
  }
  if (!not_slower) {
    std::fprintf(stderr,
                 "FATAL: auto axis dispatch slower than forced-sparse in "
                 "aggregate (%.3f ms vs %.3f ms)\n",
                 auto_total * 1e-6, sparse_total * 1e-6);
    return 1;
  }
  if (!auto_within_best) {
    std::fprintf(stderr,
                 "FATAL: auto axis dispatch lost to the best forced mode "
                 "by more than 15%% on at least one microbench cell (see "
                 "table)\n");
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
