// E5 — cost of nesting: evaluating a nested TWA costs one subtree-oracle
// pass per automaton in the hierarchy (O(|Q| * n^2) per level), so total
// evaluation time is linear in nesting depth and quadratic in tree size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "twa/twa.h"

namespace xptc {
namespace {

// Level 0 searches for label[0]; level i searches for a node labelled
// labels[i % |labels|] whose subtree is accepted by level i-1.
NestedTwa MakeChainNested(int levels, const std::vector<Symbol>& labels) {
  NestedTwa nested;
  int below = nested.Add(MakeReachLabelTwa(labels[0]));
  for (int i = 1; i < levels; ++i) {
    Twa level;
    level.num_states = 2;
    level.initial_state = 0;
    level.accepting_states = {1};
    level.transitions.push_back({0, Guard{}, Move::kDownFirst, 0});
    level.transitions.push_back({0, Guard{}, Move::kRight, 0});
    Guard found;
    found.labels = {labels[static_cast<size_t>(i) % labels.size()]};
    found.tests = {{below, true}};
    level.transitions.push_back({0, found, Move::kStay, 1});
    below = nested.Add(std::move(level));
  }
  return nested;
}

void NestingReport() {
  std::printf("\nFull-oracle evaluation time (us) per nesting depth:\n");
  bench::PrintRow({"depth \\ n", "64", "256", "1024"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  std::vector<Tree> trees;
  for (int n : {64, 256, 1024}) {
    trees.push_back(
        bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 23));
  }
  for (int depth : {1, 2, 3, 4, 6, 8}) {
    const NestedTwa nested = MakeChainNested(depth, labels);
    std::vector<std::string> row = {std::to_string(depth)};
    for (const Tree& tree : trees) {
      const double seconds =
          bench::MedianSeconds([&] { nested.ComputeOracle(tree); }, 3);
      row.push_back(bench::Fmt(seconds * 1e6, 0));
    }
    bench::PrintRow(row);
  }
  std::printf("Expected shape: each column grows linearly with depth; each "
              "row grows ~quadratically with n.\n");
}

void BM_NestedOracle(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const NestedTwa nested =
      MakeChainNested(static_cast<int>(state.range(0)), labels);
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(1)),
                                     TreeShape::kUniformRecursive, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nested.ComputeOracle(tree));
  }
}
BENCHMARK(BM_NestedOracle)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({8, 256})
    ->Args({4, 64})
    ->Args({4, 1024});

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E5: nested TWA evaluation vs. nesting depth",
      "nested TWA membership is polynomial: one subtree-acceptance pass per "
      "hierarchy level [T1/T2 machinery]",
      "constructed k-level hierarchies (each level tests the one below on "
      "subtrees) evaluated on trees of 64..1024 nodes");
  xptc::NestingReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
