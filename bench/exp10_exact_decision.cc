// E10 — exact automata-theoretic decision vs. bounded-model search on the
// downward fragment. The pipeline downward RegXPath(W) → nested TWA → DFTA
// (the paper's NTWA ⊆ REG inclusion, made constructive for downward
// hierarchies) turns satisfiability / equivalence / containment into DFTA
// emptiness checks: a *decision*, not a search. This experiment reports
// (a) the DFTA sizes the conversion produces, (b) decision time vs. the
// bounded checker's refutation time, and (c) the completeness gap — unsat
// formulas the bounded checker can only certify up to its bound.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "compile/to_dfta.h"
#include "sat/bounded.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

void DecisionReport() {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  const std::pair<const char*, bool> cases[] = {
      {"<child[a]/child[b]>", true},
      {"<desc[a]> and not <desc[b]>", true},
      {"a and not a", false},
      {"<desc[a]> and not <desc[a or (a and a)]>", false},
      {"not <child> and <desc[b]>", false},
      {"<dos[a and not <child>]> and not <desc[a]> and not a", false},
      {"<(child[a])*/child[b]> and not <desc[b]>", false},
  };
  std::printf("\nExact satisfiability decisions (downward fragment):\n");
  bench::PrintRow({"query", "sat?", "dfta states", "minimized", "decide ms",
                   "bounded ms"},
                  16);
  int index = 0;
  for (const auto& [text, expected_sat] : cases) {
    NodePtr query = ParseNode(text, &alphabet).ValueOrDie();
    Result<Dfta> dfta = DownwardQueryToDfta(*query, &alphabet, labels);
    if (!dfta.ok()) {
      std::printf("  %s: %s\n", text, dfta.status().ToString().c_str());
      continue;
    }
    bool is_sat = false;
    const double decide_seconds = bench::MedianSeconds(
        [&] {
          is_sat = *DownwardRootSatisfiable(*query, &alphabet, labels);
        },
        3);
    BoundedSearchOptions bounded_options;
    bounded_options.extra_labels = 0;
    bounded_options.random_rounds = 50;
    BoundedChecker checker(&alphabet, bounded_options);
    const double bounded_seconds = bench::MedianSeconds(
        [&] { checker.FindSatisfying(*query); }, 1);
    bench::PrintRow({"q" + std::to_string(index++),
                     is_sat ? "SAT" : "UNSAT",
                     std::to_string(dfta->num_states()),
                     std::to_string(dfta->Minimize().num_states()),
                     bench::Fmt(decide_seconds * 1e3, 2),
                     bench::Fmt(bounded_seconds * 1e3, 2)},
                    16);
    if (is_sat != expected_sat) {
      std::printf("  UNEXPECTED verdict for %s\n", text);
    }
  }
  std::printf("Note: for UNSAT inputs the bounded column certifies only "
              "'no model up to the bound'; the exact column is a decision "
              "for all tree sizes.\n");

  std::printf("\nExact containment decisions:\n");
  const std::tuple<const char*, const char*, bool> pairs[] = {
      {"<child[a]>", "<desc[a]>", true},
      {"<desc[a]>", "<child[a]>", false},
      {"<child[a and b]>", "<child[a]> and <child[b]>", true},
      {"<child[a]> and <child[b]>", "<child[a and b]>", false},
      // Every walk (child[a])*/child[b] ends at a descendant labelled b.
      {"<(child[a])*/child[b]>", "<desc[b]> or b", true},
  };
  bench::PrintRow({"containment", "verdict"}, 24);
  int pair_index = 0;
  for (const auto& [lhs, rhs, expected] : pairs) {
    NodePtr a = ParseNode(lhs, &alphabet).ValueOrDie();
    NodePtr b = ParseNode(rhs, &alphabet).ValueOrDie();
    const bool contained =
        *DownwardRootContained(*a, *b, &alphabet, labels);
    bench::PrintRow({"p" + std::to_string(pair_index++),
                     contained ? "contained" : "NOT contained"},
                    24);
    if (contained != expected) {
      std::printf("  UNEXPECTED verdict for %s <= %s\n", lhs, rhs);
    }
  }
}

void BM_ExactSatDecision(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  NodePtr query =
      ParseNode("<desc[a]> and not <desc[b]>", &alphabet).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DownwardRootSatisfiable(*query, &alphabet, labels));
  }
}
BENCHMARK(BM_ExactSatDecision);

void BM_ExactEquivalence(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  NodePtr a = ParseNode("<desc[a]>", &alphabet).ValueOrDie();
  NodePtr b = ParseNode("<child/dos[a]>", &alphabet).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DownwardRootEquivalent(*a, *b, &alphabet, labels));
  }
}
BENCHMARK(BM_ExactEquivalence);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E10: exact decisions via nested-TWA -> bottom-up conversion",
      "nested TWA recognize only regular languages [T3 companion "
      "inclusion]; constructively, downward hierarchies convert to DFTA, "
      "deciding satisfiability/equivalence/containment exactly",
      "downward queries compiled to NTWA, converted to DFTA, decided by "
      "automaton emptiness; bounded-model search shown for contrast");
  xptc::DecisionReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
