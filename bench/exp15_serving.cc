// E15 — Query serving: end-to-end loopback load test of the epoll
// front-end (src/server/) built over the batch/exec layers.
//
// Like E11 this measures no claim from the paper; it measures the
// serving layer the repo grew around the paper's evaluator. Three
// sections matter:
//   1. latency: open-loop paced arrivals (latency measured from the
//      *intended* send time, so a stalled server cannot hide behind
//      coordinated omission) → p50/p99/p999;
//   2. saturation: closed-loop clients at full tilt → QPS;
//   3. overload: a deliberately starved server (1 worker, tiny admission
//      queue) under full-tilt load MUST shed (non-zero kOverloaded), MUST
//      NOT produce a single malformed response frame, and the
//      server.shed counter must equal the shed responses observed on the
//      wire — the bench exits non-zero otherwise, so it doubles as the
//      CI overload gate.
//
// JSON section schema ("exp15_serving" in BENCH_serving.json):
//   {"smoke": bool, "hw_threads": int, "trees": int,
//    "nodes_per_tree": int, "conns": int,
//    "latency": {"rate_qps": f, "samples": int, "p50_us": f, "p99_us": f,
//                "p999_us": f},
//    "saturation": {"conns": int, "seconds": f, "requests": int, "qps": f},
//    "overload": {"requests": int, "ok": int, "shed": int,
//                 "shed_counter": int, "deadline_exceeded": int,
//                 "protocol_errors": int, "counters_match": bool}}

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/threadpool.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "tree/xml.h"

namespace xptc {
namespace {

using server::BlockingClient;
using server::EvalMode;
using server::QueryServer;
using server::QueryService;
using server::RespCode;
using server::ServerOptions;
using server::ServiceOptions;

using Clock = std::chrono::steady_clock;

const char* kWorkload[] = {
    "<child[a]>", "<desc[b]>", "b or c", "<child[<child[c]>]>",
    "<desc[a]> and <desc[b]>", "<(child)*[a]>", "not a", "leaf",
};
constexpr size_t kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

struct Percentiles {
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

Percentiles ComputePercentiles(std::vector<double>* us) {
  Percentiles p;
  if (us->empty()) return p;
  std::sort(us->begin(), us->end());
  const auto at = [&](double q) {
    const size_t i = static_cast<size_t>(q * (us->size() - 1));
    return (*us)[i];
  };
  p.p50_us = at(0.50);
  p.p99_us = at(0.99);
  p.p999_us = at(0.999);
  return p;
}

std::unique_ptr<QueryService> BuildService(int trees, int nodes_per_tree,
                                           int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  auto service = std::make_unique<QueryService>(options);
  Alphabet scratch;  // labels only; the service re-parses into its own
  for (int t = 0; t < trees; ++t) {
    const Tree tree = bench::BenchTree(&scratch, nodes_per_tree,
                                       TreeShape::kUniformRecursive,
                                       /*seed=*/1000 + t);
    const std::string xml = WriteXml(tree, scratch);
    auto id = service->AddTreeXml(xml);
    if (!id.ok()) {
      std::fprintf(stderr, "FATAL: AddTreeXml: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  return service;
}

int64_t CounterValue(const char* name) {
  return obs::Registry::Default().counter(name).value();
}

/// Closed-loop phase: `conns` clients at full tilt for `seconds`.
/// Returns total completed requests; every response must be kOk.
int64_t ClosedLoop(uint16_t port, int conns, double seconds, int trees,
                   std::atomic<int>* errors) {
  std::atomic<int64_t> total{0};
  std::vector<std::thread> threads;
  const auto stop_at = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = BlockingClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++*errors;
        return;
      }
      int64_t i = 0;
      while (Clock::now() < stop_at) {
        const char* query = kWorkload[(c + i) % kWorkloadSize];
        const int t = static_cast<int>((c * 31 + i) % trees);
        auto resp = client->Query(query, {t}, EvalMode::kNodeSet);
        if (!resp.ok() || resp->code != RespCode::kOk) {
          ++*errors;
          return;
        }
        ++i;
      }
      total += i;
    });
  }
  for (auto& t : threads) t.join();
  return total.load();
}

/// Open-loop phase: each client paces arrivals at `rate_per_conn` QPS;
/// latency is measured from the intended arrival time.
std::vector<double> OpenLoop(uint16_t port, int conns, double rate_per_conn,
                             double seconds, int trees,
                             std::atomic<int>* errors) {
  std::vector<std::vector<double>> per_thread(conns);
  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = BlockingClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++*errors;
        return;
      }
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / rate_per_conn));
      const int64_t n = static_cast<int64_t>(seconds * rate_per_conn);
      const auto start = Clock::now();
      per_thread[c].reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const auto intended = start + interval * i;
        std::this_thread::sleep_until(intended);
        const char* query = kWorkload[(c + i) % kWorkloadSize];
        const int t = static_cast<int>((c * 17 + i) % trees);
        auto resp = client->Query(query, {t}, EvalMode::kNodeSet);
        if (!resp.ok() || resp->code != RespCode::kOk) {
          ++*errors;
          return;
        }
        per_thread[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - intended)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> all;
  for (auto& v : per_thread) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

struct OverloadReport {
  int64_t requests = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t shed_counter = 0;
  int64_t deadline_exceeded = 0;
  int64_t protocol_errors = 0;
  bool counters_match = false;
};

/// Overload phase: starved server (1 worker, tiny queue), full-tilt
/// clients. Every response must still be a well-formed frame that is
/// either kOk or kOverloaded; the wire-observed shed count must equal the
/// server.shed counter delta.
OverloadReport Overload(int conns, double seconds, int trees,
                        int nodes_per_tree) {
  auto service = BuildService(trees, nodes_per_tree, /*workers=*/1);
  ServerOptions options;
  options.queue_capacity = 2;
  QueryServer server(service.get(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", started.ToString().c_str());
    std::exit(1);
  }
  const int64_t shed0 = CounterValue("server.shed");
  const int64_t expired0 = CounterValue("server.deadline_exceeded");

  std::atomic<int64_t> requests{0}, ok{0}, shed{0}, protocol_errors{0};
  std::vector<std::thread> threads;
  const auto stop_at = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = BlockingClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;  // conn cap refusals are fine under load
      int64_t i = 0;
      while (Clock::now() < stop_at) {
        const char* query = kWorkload[(c + i) % kWorkloadSize];
        auto resp = client->Query(query, {static_cast<int>(i % trees)});
        ++requests;
        if (!resp.ok()) {
          // A transport error (closed conn) is tolerated under overload;
          // a *malformed frame* is not — Query distinguishes them via
          // InvalidArgument from the decoder.
          if (resp.status().IsInvalidArgument()) ++protocol_errors;
          return;
        }
        if (resp->code == RespCode::kOk) {
          ++ok;
        } else if (resp->code == RespCode::kOverloaded) {
          ++shed;
        } else if (resp->code != RespCode::kDeadlineExceeded) {
          ++protocol_errors;  // no other outcome is legal here
          return;
        }
        ++i;
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Shutdown();

  OverloadReport report;
  report.requests = requests.load();
  report.ok = ok.load();
  report.shed = shed.load();
  report.shed_counter = CounterValue("server.shed") - shed0;
  report.deadline_exceeded = CounterValue("server.deadline_exceeded") -
                             expired0;
  report.protocol_errors = protocol_errors.load();
  report.counters_match = report.shed == report.shed_counter;
  return report;
}

}  // namespace
}  // namespace xptc

int main() {
  using namespace xptc;
  bench::PrintHeader(
      "E15: query serving (epoll front-end + admission control)",
      "engineering experiment, no paper claim: open-loop latency "
      "percentiles without coordinated omission; closed-loop saturation "
      "QPS; overload sheds (429) instead of growing queues, with the "
      "shed counter matching the wire bit-for-bit",
      "loopback TCP, binary protocol, generated uniform trees; paced "
      "arrivals for latency, full tilt for saturation, starved server "
      "(1 worker, queue=2) for overload");

  const bool smoke = bench::SmokeMode();
  const int trees = smoke ? 4 : 8;
  const int nodes_per_tree = smoke ? 128 : 1024;
  const int conns = smoke ? 2 : 4;
  const double seconds = smoke ? 0.3 : 3.0;
  const int hw = ThreadPool::DefaultWorkers();

  auto service = BuildService(trees, nodes_per_tree, hw);
  QueryServer server(service.get());
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", started.ToString().c_str());
    return 1;
  }
  std::atomic<int> errors{0};

  // Saturation first: its QPS sets the paced rate for the latency phase.
  const auto sat_start = Clock::now();
  const int64_t sat_requests =
      ClosedLoop(server.port(), conns, seconds, trees, &errors);
  const double sat_seconds =
      std::chrono::duration<double>(Clock::now() - sat_start).count();
  const double sat_qps = sat_requests / sat_seconds;
  std::printf("saturation: %lld requests, %d conns, %.2fs -> %.0f qps\n",
              static_cast<long long>(sat_requests), conns, sat_seconds,
              sat_qps);

  // Latency at ~40% of saturation: below the knee, so the percentiles
  // describe the server, not the queue.
  const double rate_per_conn =
      std::max(20.0, 0.4 * sat_qps / conns);
  std::vector<double> latencies = OpenLoop(server.port(), conns,
                                           rate_per_conn, seconds, trees,
                                           &errors);
  Percentiles p = ComputePercentiles(&latencies);
  std::printf("latency: %zu samples at %.0f qps -> p50 %.0fus, p99 %.0fus, "
              "p999 %.0fus\n",
              latencies.size(), rate_per_conn * conns, p.p50_us, p.p99_us,
              p.p999_us);
  server.Shutdown();

  // Overload: more clients than the starved server can serve.
  OverloadReport overload =
      Overload(2 * conns, seconds, trees, nodes_per_tree);
  std::printf("overload: %lld requests -> %lld ok, %lld shed (counter "
              "%lld), %lld deadline, %lld protocol errors\n",
              static_cast<long long>(overload.requests),
              static_cast<long long>(overload.ok),
              static_cast<long long>(overload.shed),
              static_cast<long long>(overload.shed_counter),
              static_cast<long long>(overload.deadline_exceeded),
              static_cast<long long>(overload.protocol_errors));

  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(2);
  json << "{\"smoke\": " << (smoke ? "true" : "false")
       << ", \"hw_threads\": " << hw << ", \"trees\": " << trees
       << ", \"nodes_per_tree\": " << nodes_per_tree
       << ", \"conns\": " << conns << ", \"latency\": {\"rate_qps\": "
       << rate_per_conn * conns << ", \"samples\": " << latencies.size()
       << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
       << ", \"p999_us\": " << p.p999_us << "}, \"saturation\": {\"conns\": "
       << conns << ", \"seconds\": " << sat_seconds
       << ", \"requests\": " << sat_requests << ", \"qps\": " << sat_qps
       << "}, \"overload\": {\"requests\": " << overload.requests
       << ", \"ok\": " << overload.ok << ", \"shed\": " << overload.shed
       << ", \"shed_counter\": " << overload.shed_counter
       << ", \"deadline_exceeded\": " << overload.deadline_exceeded
       << ", \"protocol_errors\": " << overload.protocol_errors
       << ", \"counters_match\": "
       << (overload.counters_match ? "true" : "false") << "}}";
  bench::UpdateBenchJson(bench::ServingJsonPath(), "exp15_serving",
                         json.str());
  std::printf("(recorded in %s)\n", bench::ServingJsonPath().c_str());

  // CI gates: non-zero throughput, zero client/protocol errors, real
  // sheds under overload, counters bit-for-bit.
  int failures = 0;
  if (sat_requests <= 0 || sat_qps <= 0) {
    std::printf("GATE FAILED: saturation produced no throughput\n");
    ++failures;
  }
  if (latencies.empty()) {
    std::printf("GATE FAILED: latency phase produced no samples\n");
    ++failures;
  }
  if (errors.load() != 0) {
    std::printf("GATE FAILED: %d client errors in healthy phases\n",
                errors.load());
    ++failures;
  }
  if (overload.shed == 0) {
    std::printf("GATE FAILED: overload phase shed nothing\n");
    ++failures;
  }
  if (overload.protocol_errors != 0) {
    std::printf("GATE FAILED: malformed responses under overload\n");
    ++failures;
  }
  if (!overload.counters_match) {
    std::printf("GATE FAILED: server.shed counter disagrees with the wire\n");
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("all serving gates passed\n");
  return 0;
}
