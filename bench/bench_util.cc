#include "bench_util.h"

#include <algorithm>
#include <cstdio>

namespace xptc {
namespace bench {

void PrintHeader(const std::string& id, const std::string& claim,
                 const std::string& protocol) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Claim reproduced : %s\n", claim.c_str());
  std::printf("Protocol         : %s\n", protocol.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

double MedianSeconds(const std::function<void()>& fn, int reps) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

Tree BenchTree(Alphabet* alphabet, int num_nodes, TreeShape shape,
               uint64_t seed, int num_labels) {
  Rng rng(seed);
  const std::vector<Symbol> labels = DefaultLabels(alphabet, num_labels);
  TreeGenOptions options;
  options.num_nodes = num_nodes;
  options.shape = shape;
  return GenerateTree(options, labels, &rng);
}

std::string Fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace bench
}  // namespace xptc
