#include "bench_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "testing/corpus.h"

namespace xptc {
namespace bench {

void RequireOptimizedBuild() {
#ifndef NDEBUG
  const char* allow = std::getenv("XPTC_ALLOW_DEBUG_BENCH");
  if (allow != nullptr && allow[0] != '\0' && allow[0] != '0') {
    std::fprintf(stderr,
                 "WARNING: benchmark built without NDEBUG; numbers are not "
                 "comparable (XPTC_ALLOW_DEBUG_BENCH set, continuing).\n");
    return;
  }
  std::fprintf(stderr,
               "FATAL: benchmark binary was built without NDEBUG (Debug "
               "build?). Rebuild with -DCMAKE_BUILD_TYPE=RelWithDebInfo or "
               "Release, or set XPTC_ALLOW_DEBUG_BENCH=1 to override.\n");
  std::exit(1);
#endif
}

void PrintHeader(const std::string& id, const std::string& claim,
                 const std::string& protocol) {
  RequireOptimizedBuild();
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Claim reproduced : %s\n", claim.c_str());
  std::printf("Protocol         : %s\n", protocol.c_str());
  std::printf("================================================================\n");
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

double MedianSeconds(const std::function<void()>& fn, int reps) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(end - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

Tree BenchTree(Alphabet* alphabet, int num_nodes, TreeShape shape,
               uint64_t seed, int num_labels) {
  Rng rng(seed);
  const std::vector<Symbol> labels = DefaultLabels(alphabet, num_labels);
  TreeGenOptions options;
  options.num_nodes = num_nodes;
  options.shape = shape;
  return GenerateTree(options, labels, &rng);
}

std::string Fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string DumpMismatchCase(const Tree& tree, const Alphabet& alphabet,
                             const std::string& query_text,
                             const std::string& comment) {
  testing::CorpusCase c;
  c.xml = testing::CompactXml(tree, alphabet);
  c.query = query_text;
  const std::string path = "bench-mismatch.case";
  const Status status = testing::WriteCaseFile(path, c, comment);
  return status.ok() ? path : std::string();
}

double MedianSecondsN(const std::function<void()>& fn, int inner, int reps) {
  if (inner < 1) inner = 1;
  return MedianSeconds([&] { for (int i = 0; i < inner; ++i) fn(); }, reps) /
         inner;
}

bool SmokeMode() {
  const char* value = std::getenv("XPTC_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

std::string BenchJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_JSON");
  return (value != nullptr && value[0] != '\0') ? value : "BENCH_eval.json";
}

std::string ThroughputJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_THROUGHPUT_JSON");
  return (value != nullptr && value[0] != '\0') ? value
                                                : "BENCH_throughput.json";
}

std::string CompiledJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_COMPILED_JSON");
  return (value != nullptr && value[0] != '\0') ? value
                                                : "BENCH_compiled.json";
}

std::string KernelsJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_KERNELS_JSON");
  return (value != nullptr && value[0] != '\0') ? value
                                                : "BENCH_kernels.json";
}

std::string AxisJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_AXIS_JSON");
  return (value != nullptr && value[0] != '\0') ? value : "BENCH_axis.json";
}

std::string ServingJsonPath() {
  const char* value = std::getenv("XPTC_BENCH_SERVING_JSON");
  return (value != nullptr && value[0] != '\0') ? value
                                                : "BENCH_serving.json";
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Splits the body of a top-level JSON object into (key, raw-value) pairs.
// Only has to understand JSON that this module itself wrote, but tracks
// strings and brace/bracket depth so nested objects pass through intact.
std::vector<std::pair<std::string, std::string>> ParseTopLevel(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> sections;
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return sections;
  ++i;
  for (;;) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] == ',') { ++i; continue; }
    if (text[i] != '"') break;  // malformed: stop, keep what we have
    ++i;
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      key.push_back(text[i++]);
    }
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') break;
    ++i;
    skip_ws();
    const size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;  // end of enclosing object
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    std::string value = text.substr(start, i - start);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    // A truncated file ({"key": <EOF>) parses to an empty value; keeping
    // it would re-serialize as invalid JSON. Drop it — the caller's merge
    // treats the section as absent and writes a fresh one.
    if (value.empty()) continue;
    sections.emplace_back(std::move(key), std::move(value));
  }
  return sections;
}

}  // namespace

std::string SpeedupCasesJson(const std::vector<SpeedupCase>& cases) {
  std::ostringstream out;
  out << "{\"smoke\": " << (SmokeMode() ? "true" : "false") << ", \"cases\": [";
  for (size_t i = 0; i < cases.size(); ++i) {
    const SpeedupCase& c = cases[i];
    const double speedup =
        c.opt_seconds > 0 ? c.seed_seconds / c.opt_seconds : 0;
    if (i > 0) out << ", ";
    out << "{\"name\": \"" << JsonEscape(c.name) << "\", \"query\": \""
        << JsonEscape(c.query) << "\", \"n\": " << c.n
        << ", \"seed_seconds\": " << Fmt(c.seed_seconds, 6)
        << ", \"opt_seconds\": " << Fmt(c.opt_seconds, 6)
        << ", \"speedup\": " << Fmt(speedup, 2)
        << ", \"match\": " << (c.match ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

bool UpdateBenchJson(const std::string& path, const std::string& key,
                     const std::string& section_json) {
  // Serialise the whole read-merge-write cycle: concurrent in-process
  // writers (multi-threaded benches) must not interleave file I/O.
  static std::mutex* mu = new std::mutex;  // leaked: safe at any exit order
  std::lock_guard<std::mutex> lock(*mu);
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  auto sections = ParseTopLevel(existing);
  bool replaced = false;
  for (auto& [k, v] : sections) {
    if (k == key) {
      v = section_json;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(key, section_json);
  // Write-to-temp + rename: a bench that crashes (or is killed) mid-write
  // must never leave a truncated BENCH_*.json behind — the old file stays
  // intact until the new one is durably complete, and rename(2) swaps them
  // atomically on POSIX filesystems.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return false;
    out << "{\n";
    for (size_t i = 0; i < sections.size(); ++i) {
      out << "  \"" << JsonEscape(sections[i].first)
          << "\": " << sections[i].second;
      if (i + 1 < sections.size()) out << ",";
      out << "\n";
    }
    out << "}\n";
    out.flush();
    if (!out.good()) {
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace bench
}  // namespace xptc
