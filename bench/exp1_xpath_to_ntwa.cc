// E1 — RegXPath(W) ⊆ NTWA (Theorem T1, constructive direction).
//
// Compiles generated queries from the supported fragment into nested
// tree-walking automata and (a) verifies agreement with the set-based
// evaluator across random trees, (b) reports the size of the produced
// hierarchies as a function of query size, (c) times compilation and
// automaton-based evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "compile/compile.h"
#include "tree/enumerate.h"
#include "xpath/eval.h"
#include "xpath/eval_naive.h"
#include "xpath/generator.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

void AgreementAndSizeReport() {
  std::printf("\nCompilation size and agreement (40 queries per depth, 5 "
              "random trees each):\n");
  bench::PrintRow({"depth", "avg |query|", "avg automata", "avg states",
                   "max nesting", "agreement"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  XPathToNtwaCompiler compiler(&alphabet, labels);
  for (int depth = 1; depth <= 4; ++depth) {
    Rng rng(1000 + static_cast<uint64_t>(depth));
    QueryGenOptions options;
    options.max_depth = depth;
    int64_t total_query_size = 0, total_automata = 0, total_states = 0;
    int max_nesting = 0;
    int64_t checked = 0, agreed = 0;
    for (int i = 0; i < 40; ++i) {
      NodePtr query = GenerateCompilableNode(options, labels, &rng);
      CompiledQuery compiled = compiler.Compile(*query).ValueOrDie();
      total_query_size += NodeSize(*query);
      total_automata += compiled.NumAutomata();
      total_states += compiled.TotalStates();
      max_nesting = std::max(max_nesting, compiled.NestingDepth());
      for (int t = 0; t < 5; ++t) {
        TreeGenOptions tree_options;
        tree_options.num_nodes = rng.NextInt(1, 14);
        tree_options.shape = static_cast<TreeShape>(rng.NextInt(0, 6));
        const Tree tree = GenerateTree(tree_options, labels, &rng);
        ++checked;
        if (compiled.EvalAll(tree) == EvalNodeSet(tree, *query)) ++agreed;
      }
    }
    bench::PrintRow({std::to_string(depth),
                     bench::Fmt(total_query_size / 40.0, 1),
                     bench::Fmt(total_automata / 40.0, 1),
                     bench::Fmt(total_states / 40.0, 1),
                     std::to_string(max_nesting),
                     bench::Fmt(100.0 * agreed / checked, 1) + "%"});
  }
  std::printf("Expected shape: 100%% agreement; automaton size grows "
              "linearly with |query| (modulo DNF alternatives).\n");
}

void BinaryAgreementReport() {
  std::printf("\nBinary (path) queries via doubly-marked trees "
              "(fixed set, exhaustive trees <= 4 nodes):\n");
  bench::PrintRow({"path", "states", "agreement"}, 22);
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  XPathToNtwaCompiler compiler(&alphabet, labels);
  const char* paths[] = {
      "child[a]/desc", "(child/right)*", "anc[b] | child",
      "desc[not <child[a]>]/parent", "foll[a]",
  };
  for (const char* text : paths) {
    PathPtr path = ParsePath(text, &alphabet).ValueOrDie();
    CompiledPathQuery compiled =
        compiler.CompilePathQuery(*path).ValueOrDie();
    int64_t checked = 0, agreed = 0;
    EnumerateTrees(4, labels, [&](const Tree& tree) {
      ++checked;
      if (compiled.EvalRelation(tree) == EvalPathNaive(tree, *path)) {
        ++agreed;
      }
    });
    bench::PrintRow({text, std::to_string(compiled.TotalStates()),
                     bench::Fmt(100.0 * agreed / checked, 1) + "%"},
                    22);
  }
}

void BM_Compile(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  XPathToNtwaCompiler compiler(&alphabet, labels);
  Rng rng(42);
  QueryGenOptions options;
  options.max_depth = static_cast<int>(state.range(0));
  NodePtr query = GenerateCompilableNode(options, labels, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(*query));
  }
  state.counters["query_size"] = NodeSize(*query);
}
BENCHMARK(BM_Compile)->Arg(2)->Arg(3)->Arg(4);

void BM_EvalViaNtwa(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  XPathToNtwaCompiler compiler(&alphabet, labels);
  Rng rng(43);
  QueryGenOptions options;
  options.max_depth = 3;
  NodePtr query = GenerateCompilableNode(options, labels, &rng);
  CompiledQuery compiled = compiler.Compile(*query).ValueOrDie();
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 7, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.EvalAt(tree, tree.root()));
  }
}
BENCHMARK(BM_EvalViaNtwa)->Arg(32)->Arg(128)->Arg(512);

void BM_EvalViaSets(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
  Rng rng(43);
  QueryGenOptions options;
  options.max_depth = 3;
  NodePtr query = GenerateCompilableNode(options, labels, &rng);
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 7, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalNodeSet(tree, *query));
  }
}
BENCHMARK(BM_EvalViaSets)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E1: RegXPath(W) -> nested tree-walking automata",
      "every Regular XPath(W) query (existential navigational fragment) "
      "compiles to a nested TWA defining the same unary query [T1]",
      "generate queries per AST depth; compile; compare automaton answers "
      "with the set-based evaluator on random trees; report sizes");
  xptc::AgreementAndSizeReport();
  xptc::BinaryAgreementReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
