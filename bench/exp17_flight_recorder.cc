// E17 — Serving-path flight recorder: the cost and the coverage of the
// tracing/journal layer (src/obs/recorder.h, src/obs/journal.h) on the
// live serving path. Like E15 this measures no claim from the paper; it
// gates the observability the repo grew around the paper's evaluator.
// Three sections, all hard CI gates:
//   1. crash dump: a forked child installs the crash handler, writes
//      known marker events from three concurrent threads, and abort()s;
//      the parent decodes the dump and requires every thread's events
//      back, in per-thread program order, plus the handler's kCrash
//      record — the post-mortem path must survive an actual SIGABRT;
//   2. overhead: closed-loop saturation with the recorder ON (1-in-64
//      sampling + journal) vs OFF, interleaved best-of-N; the ON
//      configuration must cost <= 2% QPS (always-on means always on);
//   3. slow latch: a deliberately slow batch request (closure-heavy
//      queries, workload doubled until it clears 5 ms on the wire) must
//      appear in /debug/slow under its client-supplied id, with its
//      phase attribution summing to the wire-observed latency within
//      tolerance.
//
// JSON section schema ("exp17_flight_recorder" in BENCH_serving.json):
//   {"smoke": bool, "hw_threads": int, "trees": int,
//    "nodes_per_tree": int, "conns": int,
//    "crash": {"threads": int, "records": int, "ordered": bool},
//    "overhead": {"pairs": int, "seconds": f, "qps_on": f, "qps_off": f,
//                 "overhead_pct": f},
//    "slow": {"wire_us": f, "total_us": f, "phase_sum_us": f,
//             "exec_us": f, "spans": int}}

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/threadpool.h"
#include "obs/journal.h"
#include "obs/recorder.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "tree/xml.h"

namespace xptc {
namespace {

using server::BlockingClient;
using server::EvalMode;
using server::QueryServer;
using server::QueryService;
using server::RespCode;
using server::ServerOptions;
using server::ServiceOptions;

using Clock = std::chrono::steady_clock;

const char* kWorkload[] = {
    "<child[a]>", "<desc[b]>", "b or c", "<child[<child[c]>]>",
    "<desc[a]> and <desc[b]>", "<(child)*[a]>", "not a", "leaf",
};
constexpr size_t kWorkloadSize = sizeof(kWorkload) / sizeof(kWorkload[0]);

std::unique_ptr<QueryService> BuildService(int trees, int nodes_per_tree,
                                           int workers) {
  ServiceOptions options;
  options.num_workers = workers;
  auto service = std::make_unique<QueryService>(options);
  Alphabet scratch;  // labels only; the service re-parses into its own
  for (int t = 0; t < trees; ++t) {
    const Tree tree = bench::BenchTree(&scratch, nodes_per_tree,
                                       TreeShape::kUniformRecursive,
                                       /*seed=*/1700 + t);
    const std::string xml = WriteXml(tree, scratch);
    auto id = service->AddTreeXml(xml);
    if (!id.ok()) {
      std::fprintf(stderr, "FATAL: AddTreeXml: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  return service;
}

// ---------------------------------------------------------------------------
// Section 1: crash-dump round trip.

constexpr int kCrashWriters = 3;   // main + 2 spawned
constexpr int kMarksPerWriter = 16;

/// The forked child's whole life: reset the journal, install the crash
/// handler, write marker events from `kCrashWriters` concurrent threads
/// (held alive together so each keeps its own ring), then abort(). Never
/// returns; failure paths _exit with a distinct code.
[[noreturn]] void CrashChild(const char* dump_path) {
  obs::Journal::ResetForTesting();
  obs::Journal::SetEnabled(true);
  obs::Journal::InstallCrashHandler(dump_path);
  std::atomic<int> done{0};
  const auto writer = [&](int w) {
    obs::Journal::ScopedRequestId id(0xE1700u + static_cast<uint64_t>(w));
    for (int i = 0; i < kMarksPerWriter; ++i) {
      obs::Journal::Record(obs::JournalCode::kMark,
                           static_cast<uint64_t>(w) * 1000 +
                               static_cast<uint64_t>(i));
    }
    // Hold every writer's ring live until all have written: a thread that
    // exits releases its ring for reuse, which would merge the writers.
    done.fetch_add(1);
    while (done.load() < kCrashWriters) std::this_thread::yield();
  };
  std::thread t1(writer, 1), t2(writer, 2);
  writer(0);
  t1.join();
  t2.join();
  std::abort();  // SIGABRT -> handler: kCrash record, dump, re-raise
}

struct CrashReport {
  bool ok = false;
  int threads = 0;
  int records = 0;
  bool ordered = false;
  std::string error;
};

CrashReport CrashDumpRoundTrip() {
  const char* dump_path = "exp17_journal.dump";
  std::remove(dump_path);
  const pid_t pid = fork();
  if (pid < 0) {
    return {false, 0, 0, false, std::string("fork: ") + std::strerror(errno)};
  }
  if (pid == 0) CrashChild(dump_path);

  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid) {
    return {false, 0, 0, false, "waitpid failed"};
  }
  if (!WIFSIGNALED(wstatus) || WTERMSIG(wstatus) != SIGABRT) {
    return {false, 0, 0, false,
            "child did not die by SIGABRT (wstatus=" +
                std::to_string(wstatus) + ")"};
  }
  std::ifstream in(dump_path, std::ios::binary);
  if (!in) return {false, 0, 0, false, "crash handler wrote no dump"};
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const Result<obs::JournalDump> dump = obs::ParseJournalDump(bytes.str());
  if (!dump.ok()) {
    return {false, 0, 0, false, "decode: " + dump.status().ToString()};
  }

  CrashReport report;
  report.threads = static_cast<int>(dump->threads.size());
  report.ordered = true;
  // Per-thread program order: seq strictly increasing within each ring,
  // and each writer's markers intact, in order, in exactly one ring.
  std::vector<std::vector<uint64_t>> marks(kCrashWriters);
  std::vector<int> home_ring(kCrashWriters, -1);
  bool saw_crash_record = false;
  for (size_t r = 0; r < dump->threads.size(); ++r) {
    uint32_t prev_seq = 0;
    bool first = true;
    for (const obs::JournalRecord& rec : dump->threads[r]) {
      ++report.records;
      if (!first && rec.seq <= prev_seq) report.ordered = false;
      prev_seq = rec.seq;
      first = false;
      if (rec.code == static_cast<uint32_t>(obs::JournalCode::kCrash)) {
        saw_crash_record = true;
        if (rec.arg != static_cast<uint64_t>(SIGABRT)) {
          return {false, report.threads, report.records, false,
                  "kCrash record carries the wrong signal"};
        }
      }
      if (rec.code == static_cast<uint32_t>(obs::JournalCode::kMark)) {
        const int w = static_cast<int>(rec.arg / 1000);
        if (w < 0 || w >= kCrashWriters) {
          return {false, report.threads, report.records, false,
                  "unexpected marker arg"};
        }
        if (home_ring[w] == -1) home_ring[w] = static_cast<int>(r);
        if (home_ring[w] != static_cast<int>(r)) {
          return {false, report.threads, report.records, false,
                  "one writer's markers span two rings"};
        }
        marks[w].push_back(rec.arg % 1000);
      }
    }
  }
  for (int w = 0; w < kCrashWriters; ++w) {
    if (static_cast<int>(marks[w].size()) != kMarksPerWriter) {
      return {false, report.threads, report.records, report.ordered,
              "writer " + std::to_string(w) + " lost markers (" +
                  std::to_string(marks[w].size()) + "/" +
                  std::to_string(kMarksPerWriter) + ")"};
    }
    for (int i = 0; i < kMarksPerWriter; ++i) {
      if (marks[w][i] != static_cast<uint64_t>(i)) {
        return {false, report.threads, report.records, false,
                "writer " + std::to_string(w) +
                    " markers out of program order"};
      }
    }
  }
  if (!saw_crash_record) {
    return {false, report.threads, report.records, report.ordered,
            "no kCrash record in the dump"};
  }
  if (!report.ordered) {
    return {false, report.threads, report.records, false,
            "per-thread seq not strictly increasing"};
  }
  std::remove(dump_path);
  report.ok = true;
  return report;
}

// ---------------------------------------------------------------------------
// Section 2: recorder overhead at saturation.

/// Closed-loop phase: `conns` clients at full tilt for `seconds`; every
/// response must be kOk. Returns completed requests.
int64_t ClosedLoop(uint16_t port, int conns, double seconds, int trees,
                   std::atomic<int>* errors) {
  std::atomic<int64_t> total{0};
  std::vector<std::thread> threads;
  const auto stop_at = Clock::now() +
                       std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      auto client = BlockingClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++*errors;
        return;
      }
      int64_t i = 0;
      while (Clock::now() < stop_at) {
        const char* query = kWorkload[(c + i) % kWorkloadSize];
        const int t = static_cast<int>((c * 31 + i) % trees);
        auto resp = client->Query(query, {t}, EvalMode::kNodeSet);
        if (!resp.ok() || resp->code != RespCode::kOk) {
          ++*errors;
          return;
        }
        ++i;
      }
      total += i;
    });
  }
  for (auto& t : threads) t.join();
  return total.load();
}

struct OverheadReport {
  double qps_on = 0;
  double qps_off = 0;
  double overhead_pct = 0;
};

/// Drift-immune A/B at full tilt. Loopback saturation on a shared box
/// drifts by several percent over tens of seconds — far more than the
/// recorder costs — so a long ON run against a long OFF run measures the
/// machine, not the recorder. Instead: many short windows in ABBA order
/// (ON,OFF / OFF,ON per pair, cancelling linear drift), totals aggregated
/// per config across all windows.
OverheadReport MeasureOverhead(uint16_t port, int conns, double seconds,
                               int pairs, int trees,
                               std::atomic<int>* errors) {
  int64_t total_on = 0, total_off = 0;
  double seconds_on = 0, seconds_off = 0;
  const auto window = [&](bool on) {
    obs::FlightRecorder::Get().SetSampleEveryN(on ? 64 : 0);
    obs::Journal::SetEnabled(on);
    const auto start = Clock::now();
    const int64_t n = ClosedLoop(port, conns, seconds, trees, errors);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    (on ? total_on : total_off) += n;
    (on ? seconds_on : seconds_off) += elapsed;
  };
  // Warm-up window (discarded): connections, caches, frequency governor.
  ClosedLoop(port, conns, seconds, trees, errors);
  for (int pair = 0; pair < pairs; ++pair) {
    const bool on_first = (pair % 2) == 0;
    window(on_first);
    window(!on_first);
  }
  obs::Journal::SetEnabled(true);

  OverheadReport report;
  report.qps_on = seconds_on > 0 ? total_on / seconds_on : 0;
  report.qps_off = seconds_off > 0 ? total_off / seconds_off : 0;
  report.overhead_pct =
      report.qps_off > 0
          ? 100.0 * (report.qps_off - report.qps_on) / report.qps_off
          : 0.0;
  return report;
}

// ---------------------------------------------------------------------------
// Section 3: slow-request latch.

/// Finds `"key":<int>` after `from` in a JSON string. False if absent.
bool FindJsonInt(const std::string& json, const std::string& key,
                 size_t from, int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  *out = std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
  return true;
}

struct SlowReport {
  bool ok = false;
  double wire_us = 0;
  double total_us = 0;
  double phase_sum_us = 0;
  double exec_us = 0;
  int64_t spans = 0;
  std::string error;
};

SlowReport SlowRequestLatch(uint16_t port, int trees) {
  obs::FlightRecorder::Get().Reset();
  obs::FlightRecorder::Get().SetSampleEveryN(1);
  obs::Journal::SetEnabled(true);

  auto client = BlockingClient::Connect("127.0.0.1", port);
  if (!client.ok()) return {false, 0, 0, 0, 0, 0, "connect failed"};
  auto warm = client->Query("b", {0});
  if (!warm.ok() || warm->code != RespCode::kOk) {
    return {false, 0, 0, 0, 0, 0, "warm query failed"};
  }

  // Double the batch until the request is unambiguously slow on the wire
  // (>= 5 ms): the latch must be deterministic, not scheduler luck. Each
  // attempt gets a distinct trace id so the final lookup is unambiguous.
  uint64_t trace_id = 0;
  double wire_us = 0;
  int64_t batch_queries = 8;
  for (int attempt = 0;; ++attempt) {
    trace_id = 0xE1710u + static_cast<uint64_t>(attempt);
    std::vector<std::string> queries(
        static_cast<size_t>(batch_queries),
        "<(child|right)*[a]> and <desc[b]>");
    const auto start = Clock::now();
    auto resp = client->Batch(queries, {}, EvalMode::kNodeSet, 0,
                              server::kDialectXPath, trace_id);
    wire_us = std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count();
    if (!resp.ok() || resp->code != RespCode::kOk) {
      return {false, 0, 0, 0, 0, 0, "slow batch failed"};
    }
    if (resp->trace_id != trace_id) {
      return {false, 0, 0, 0, 0, 0, "trace id not echoed on the wire"};
    }
    if (wire_us >= 5000.0 || batch_queries >= 4096) break;
    batch_queries *= 4;
  }

  // The latch: the request must be in /debug/slow under its id. The GET
  // rides the same connection, so the slow response's flush (and trace
  // record) happened before this request was even parsed.
  const std::string id_hex = obs::FormatFlightId(trace_id);
  auto slow = client->Http("GET", "/debug/slow");
  if (!slow.ok() || slow->status != 200) {
    return {false, wire_us, 0, 0, 0, 0, "/debug/slow not served"};
  }
  if (slow->body.find(id_hex) == std::string::npos) {
    return {false, wire_us, 0, 0, 0, 0,
            "slow request " + id_hex + " not latched in /debug/slow"};
  }

  auto lookup = client->Http("GET", "/debug/trace/" + id_hex);
  if (!lookup.ok() || lookup->status != 200) {
    return {false, wire_us, 0, 0, 0, 0, "/debug/trace lookup failed"};
  }
  const std::string& body = lookup->body;
  int64_t total_ns = 0;
  if (!FindJsonInt(body, "total_ns", 0, &total_ns)) {
    return {false, wire_us, 0, 0, 0, 0, "trace JSON lacks total_ns"};
  }
  static const char* kPhaseKeys[] = {"accept_ns", "parse_ns",  "queue_ns",
                                     "exec_ns",   "encode_ns", "flush_ns"};
  int64_t phase_sum_ns = 0, exec_ns = 0;
  for (const char* key : kPhaseKeys) {
    int64_t ns = 0;
    if (!FindJsonInt(body, key, 0, &ns)) {
      return {false, wire_us, 0, 0, 0, 0,
              std::string("trace JSON lacks ") + key};
    }
    phase_sum_ns += ns;
    if (std::strcmp(key, "exec_ns") == 0) exec_ns = ns;
  }
  int64_t spans = 0;
  {
    size_t count = 0;
    for (size_t at = body.find("\"worker\":"); at != std::string::npos;
         at = body.find("\"worker\":", at + 1)) {
      ++count;
    }
    spans = static_cast<int64_t>(count);
  }

  SlowReport report;
  report.wire_us = wire_us;
  report.total_us = total_ns / 1000.0;
  report.phase_sum_us = phase_sum_ns / 1000.0;
  report.exec_us = exec_ns / 1000.0;
  report.spans = spans;
  const double wire_ns = wire_us * 1000.0;
  // Attribution tolerance: the trace clock starts at the first byte seen
  // and stops at the last byte flushed, so total <= wire up to scheduler
  // jitter — the kFlushEnd stamp is read by the reactor *after* the final
  // write() returns, and on a loaded (or single-core) host the client can
  // read the response and stop its wire clock before the reactor gets
  // scheduled again, so the trace may overshoot the wire by a descheduling
  // quantum. 2 ms bounds that without admitting a real attribution bug
  // (a mis-stitched span would be off by whole phases, not a timeslice).
  // The gap below wire is client-side send/recv plus the reactor hop —
  // bounded, not load-dependent. The phases in turn partition total minus
  // handoff gaps.
  if (total_ns > static_cast<int64_t>(wire_ns) + 2'000'000) {
    report.error = "trace total exceeds wire latency";
    return report;
  }
  if (wire_ns - total_ns > std::max(10e6, 0.5 * wire_ns)) {
    report.error = "trace total too far below wire latency";
    return report;
  }
  if (phase_sum_ns > total_ns + 1000000) {
    report.error = "phase sum exceeds trace total";
    return report;
  }
  if (phase_sum_ns < total_ns / 2) {
    report.error = "phases attribute less than half the trace total";
    return report;
  }
  if (exec_ns <= 0) {
    report.error = "exec phase empty for an exec-bound request";
    return report;
  }
  if (spans != static_cast<int64_t>(batch_queries) * trees) {
    report.error = "span count != trees x queries (" +
                   std::to_string(spans) + " vs " +
                   std::to_string(batch_queries * trees) + ")";
    return report;
  }
  report.ok = true;
  return report;
}

}  // namespace
}  // namespace xptc

int main() {
  using namespace xptc;
  bench::PrintHeader(
      "E17: serving-path flight recorder (tracing, sampling, journal)",
      "engineering experiment, no paper claim: the always-on recorder "
      "costs <= 2% saturation QPS; a deterministically slow request is "
      "latched in /debug/slow with phase attribution matching the wire; "
      "the crash-handler journal dump decodes with per-thread order "
      "intact after a real SIGABRT",
      "fork+abort for the crash dump; loopback TCP closed-loop A/B "
      "(interleaved best-of-N) for overhead; closure-heavy batch for the "
      "slow latch");

  const bool smoke = bench::SmokeMode();
  const int trees = smoke ? 4 : 8;
  const int nodes_per_tree = smoke ? 128 : 1024;
  const int conns = smoke ? 2 : 4;
  const double seconds = smoke ? 0.1 : 0.4;
  const int pairs = smoke ? 3 : 16;
  // Short smoke windows are scheduler-noise-dominated; the real 2% gate
  // runs in the full configuration.
  const double overhead_gate_pct = smoke ? 35.0 : 2.0;
  const int hw = ThreadPool::DefaultWorkers();
  const uint32_t saved_sample_n =
      obs::FlightRecorder::Get().sample_every_n();

  // Crash dump first, while this process is still single-threaded: fork
  // from a threaded parent would constrain what the child may do.
  const CrashReport crash = CrashDumpRoundTrip();
  std::printf("crash dump: %d rings, %d records, ordered=%s%s%s\n",
              crash.threads, crash.records, crash.ordered ? "yes" : "no",
              crash.ok ? "" : " — ", crash.ok ? "" : crash.error.c_str());

  auto service = BuildService(trees, nodes_per_tree, hw);
  QueryServer server(service.get());
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", started.ToString().c_str());
    return 1;
  }
  std::atomic<int> errors{0};

  // Up to 3 measurement attempts keeping the best (exp16's calibration
  // idiom): ABBA pairing cancels *linear* drift inside one attempt, but
  // frequency-governor and neighbour-load state changes between windows
  // leave ±1-2% residual noise on a shared box — the same order as the
  // gate. A systematically over-budget recorder fails all three attempts;
  // a scheduler blip does not.
  OverheadReport overhead;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const OverheadReport measured =
        MeasureOverhead(server.port(), conns, seconds, pairs, trees, &errors);
    if (attempt == 0 || measured.overhead_pct < overhead.overhead_pct) {
      overhead = measured;
    }
    std::printf("overhead[%d]: on %.0f qps vs off %.0f qps -> %.2f%% "
                "(%d ABBA pairs x %.2fs, gate %.0f%%)\n",
                attempt, measured.qps_on, measured.qps_off,
                measured.overhead_pct, pairs, seconds, overhead_gate_pct);
    if (overhead.overhead_pct <= overhead_gate_pct) break;
  }

  const SlowReport slow = SlowRequestLatch(server.port(), trees);
  std::printf("slow latch: wire %.0fus, trace total %.0fus, phase sum "
              "%.0fus (exec %.0fus), %lld spans%s%s\n",
              slow.wire_us, slow.total_us, slow.phase_sum_us, slow.exec_us,
              static_cast<long long>(slow.spans), slow.ok ? "" : " — ",
              slow.ok ? "" : slow.error.c_str());

  server.Shutdown();
  obs::FlightRecorder::Get().SetSampleEveryN(saved_sample_n);
  obs::FlightRecorder::Get().Reset();
  obs::Journal::SetEnabled(true);

  std::ostringstream json;
  json.setf(std::ios::fixed);
  json.precision(2);
  json << "{\"smoke\": " << (smoke ? "true" : "false")
       << ", \"hw_threads\": " << hw << ", \"trees\": " << trees
       << ", \"nodes_per_tree\": " << nodes_per_tree
       << ", \"conns\": " << conns << ", \"crash\": {\"threads\": "
       << crash.threads << ", \"records\": " << crash.records
       << ", \"ordered\": " << (crash.ordered ? "true" : "false")
       << "}, \"overhead\": {\"pairs\": " << pairs << ", \"seconds\": "
       << seconds << ", \"qps_on\": " << overhead.qps_on
       << ", \"qps_off\": " << overhead.qps_off << ", \"overhead_pct\": "
       << overhead.overhead_pct << "}, \"slow\": {\"wire_us\": "
       << slow.wire_us << ", \"total_us\": " << slow.total_us
       << ", \"phase_sum_us\": " << slow.phase_sum_us << ", \"exec_us\": "
       << slow.exec_us << ", \"spans\": " << slow.spans << "}}";
  bench::UpdateBenchJson(bench::ServingJsonPath(), "exp17_flight_recorder",
                         json.str());
  std::printf("(recorded in %s)\n", bench::ServingJsonPath().c_str());

  int failures = 0;
  if (!crash.ok) {
    std::printf("GATE FAILED: crash dump round trip: %s\n",
                crash.error.c_str());
    ++failures;
  }
  if (errors.load() != 0) {
    std::printf("GATE FAILED: %d client errors during overhead phases\n",
                errors.load());
    ++failures;
  }
  if (overhead.qps_on <= 0 || overhead.qps_off <= 0) {
    std::printf("GATE FAILED: overhead phase produced no throughput\n");
    ++failures;
  }
  if (overhead.overhead_pct > overhead_gate_pct) {
    std::printf("GATE FAILED: recorder overhead %.2f%% > %.0f%%\n",
                overhead.overhead_pct, overhead_gate_pct);
    ++failures;
  }
  if (!slow.ok) {
    std::printf("GATE FAILED: slow-request latch: %s\n", slow.error.c_str());
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("all flight-recorder gates passed\n");
  return 0;
}
