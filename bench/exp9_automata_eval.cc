// E9 — membership cost across the three automaton classes built here:
// bottom-up (regular) automata are linear, plain TWA cost O(|Q| * n)
// configuration search, nested TWA pay one subtree pass per level
// (O(|Q| * n^2)). The ordering bottom-up < walking < nested should be
// visible at every size, with the predicted growth rates.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "bta/bta.h"
#include "bta/languages.h"
#include "twa/twa.h"

namespace xptc {
namespace {

NestedTwa MakeTwoLevel(const std::vector<Symbol>& labels) {
  NestedTwa nested;
  const int inner = nested.Add(MakeReachLabelTwa(labels[0]));
  Twa outer;
  outer.num_states = 2;
  outer.initial_state = 0;
  outer.accepting_states = {1};
  outer.transitions.push_back({0, Guard{}, Move::kDownFirst, 0});
  outer.transitions.push_back({0, Guard{}, Move::kRight, 0});
  Guard found;
  found.labels = {labels[1]};
  found.tests = {{inner, true}};
  outer.transitions.push_back({0, found, Move::kStay, 1});
  nested.Add(std::move(outer));
  return nested;
}

void MembershipReport() {
  std::printf("\nMembership time (us) by automaton class and tree size:\n");
  bench::PrintRow({"n", "bottom-up", "walking", "nested(2)"});
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Dfta dfta = HasLabelDfta(labels, labels[0]);
  const Twa twa = MakeReachLabelTwa(labels[0]);
  const NestedTwa nested = MakeTwoLevel(labels);
  for (int n : {64, 256, 1024, 4096}) {
    const Tree tree =
        bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 31);
    const double bu = bench::MedianSeconds([&] { dfta.Accepts(tree); }, 5);
    const double walk =
        bench::MedianSeconds([&] { RunTwa(twa, tree, 0, nullptr); }, 5);
    const double nest =
        bench::MedianSeconds([&] { nested.Accepts(tree); }, 3);
    bench::PrintRow({std::to_string(n), bench::Fmt(bu * 1e6, 1),
                     bench::Fmt(walk * 1e6, 1), bench::Fmt(nest * 1e6, 1)});
  }
  std::printf("Expected shape: bottom-up and walking grow linearly "
              "(bottom-up cheapest); nested grows ~quadratically.\n");
}

void BM_BottomUpMembership(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Dfta dfta = HasLabelDfta(labels, labels[0]);
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfta.Accepts(tree));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BottomUpMembership)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_WalkingMembership(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const Twa twa = MakeAllLabelsTwa({labels[0], labels[1], labels[2]});
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunTwa(twa, tree, 0, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WalkingMembership)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_NestedMembership(benchmark::State& state) {
  Alphabet alphabet;
  const std::vector<Symbol> labels = DefaultLabels(&alphabet, 3);
  const NestedTwa nested = MakeTwoLevel(labels);
  const Tree tree = bench::BenchTree(&alphabet, static_cast<int>(state.range(0)),
                                     TreeShape::kUniformRecursive, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nested.Accepts(tree));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NestedMembership)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E9: membership cost across automaton classes",
      "bottom-up automata evaluate in O(n); plain TWA in O(|Q|n); nested "
      "TWA in O(|Q|n^2) via the subtree oracle",
      "same 'reachability' style language in all three models, trees "
      "64..4096 nodes");
  xptc::MembershipReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
