#ifndef XPTC_BENCH_BENCH_UTIL_H_
#define XPTC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/rng.h"
#include "tree/generate.h"
#include "tree/tree.h"
#include "xpath/ast.h"

namespace xptc {
namespace bench {

/// Prints the experiment banner: id, the paper claim being reproduced, and
/// the protocol, so `bench_output.txt` reads as a self-contained report.
/// Also calls `RequireOptimizedBuild()` — benches refuse to report numbers
/// from an unoptimized binary.
void PrintHeader(const std::string& id, const std::string& claim,
                 const std::string& protocol);

/// Fails loudly (exit 1) when this binary was compiled without NDEBUG:
/// Debug-build timings are meaningless and have been mistaken for
/// regressions before. Set XPTC_ALLOW_DEBUG_BENCH=1 to override when
/// debugging a bench itself.
void RequireOptimizedBuild();

/// Prints a table row of the form "  col1  col2 ..." from preformatted
/// cells (experiment reports are plain fixed-width text).
void PrintRow(const std::vector<std::string>& cells, int width = 14);

/// Wall-clock seconds for one invocation of `fn` (median of `reps` runs).
double MedianSeconds(const std::function<void()>& fn, int reps = 3);

/// Like `MedianSeconds`, but each sample times `inner` back-to-back calls
/// and reports per-call seconds — for sub-millisecond workloads.
double MedianSecondsN(const std::function<void()>& fn, int inner,
                      int reps = 3);

/// True iff XPTC_BENCH_SMOKE is set in the environment: runners shrink
/// problem sizes so CI can exercise the full pipeline in seconds.
bool SmokeMode();

/// One seed-engine-vs-optimized-engine measurement, serialized into
/// BENCH_eval.json so successive PRs accumulate a perf trajectory.
struct SpeedupCase {
  std::string name;   // stable case id, e.g. "w_heavy_uniform"
  std::string query;  // concrete syntax of the measured query
  int n = 0;          // tree size in nodes
  double seed_seconds = 0;
  double opt_seconds = 0;
  bool match = false;  // optimized result bit-identical to seed result
};

/// Renders cases as a JSON object: {"cases": [...], "smoke": bool}.
std::string SpeedupCasesJson(const std::vector<SpeedupCase>& cases);

/// Read-merge-writes `section_json` under top-level key `key` in the JSON
/// object file at `path` (other sections are preserved), so exp2 and exp3
/// can share one BENCH_eval.json. Returns false on I/O failure.
///
/// BENCH_*.json schema: every file is one top-level JSON object mapping an
/// experiment id ("exp2_eval_scaling", "exp11_throughput", ...) to that
/// experiment's section object. Each section carries at least
/// {"smoke": bool} so readers can discard CI smoke numbers; the remaining
/// fields are experiment-specific and documented where the section is
/// built (see SpeedupCasesJson here and bench/exp11_throughput.cc).
/// Sections are replaced wholesale on rerun; unrelated sections survive.
///
/// Thread-safety: the read-merge-write cycle is serialised by a
/// process-wide mutex, so concurrent writers (e.g. multi-threaded benches
/// whose workers each report a section, or google-benchmark running
/// registered benchmarks on threads) cannot interleave and corrupt the
/// file. Cross-process writers are NOT serialised — CI runs benches
/// sequentially for that reason.
///
/// Crash-safety: the merged object is written to `<path>.tmp` and renamed
/// over `path` (atomic on POSIX), so a bench that dies mid-write leaves
/// the previous file intact instead of a truncated one.
///
/// Provenance: since the obs layer (DESIGN.md §11), the counter-valued
/// fields in these sections (cache hits/misses, lowering totals, dispatch
/// counts) are read from `obs::Registry::Default()` — component `stats()`
/// accessors are point-in-time views over the same registry counters — so
/// a BENCH section is a thin, named slice of the registry's JSON export.
bool UpdateBenchJson(const std::string& path, const std::string& key,
                     const std::string& section_json);

/// Path of the shared benchmark JSON (XPTC_BENCH_JSON or BENCH_eval.json).
std::string BenchJsonPath();

/// Path of the throughput benchmark JSON (XPTC_BENCH_THROUGHPUT_JSON or
/// BENCH_throughput.json). Kept separate from BENCH_eval.json: throughput
/// numbers depend on the host's core count, eval numbers do not.
std::string ThroughputJsonPath();

/// Path of the compiled-engine benchmark JSON (XPTC_BENCH_COMPILED_JSON or
/// BENCH_compiled.json): interpreter-vs-compiled comparisons from
/// bench/exp12_compiled.cc.
std::string CompiledJsonPath();

/// Path of the SIMD-kernel / superoptimizer benchmark JSON
/// (XPTC_BENCH_KERNELS_JSON or BENCH_kernels.json): scalar-vs-vector
/// kernel microbenches and superopt end-to-end comparisons from
/// bench/exp13_kernels.cc. Separate file because the numbers depend on
/// the host's vector ISA.
std::string KernelsJsonPath();

/// Path of the axis-streaming benchmark JSON (XPTC_BENCH_AXIS_JSON or
/// BENCH_axis.json): sparse-vs-dense axis kernel dispatch and the
/// profile-fed re-superoptimization measurements from
/// bench/exp14_axis_streaming.cc. Separate file because the dense-path
/// numbers depend on the host's gather throughput.
std::string AxisJsonPath();

/// Path of the serving benchmark JSON (XPTC_BENCH_SERVING_JSON or
/// BENCH_serving.json): loopback latency percentiles, saturation QPS, and
/// the overload shed accounting from bench/exp15_serving.cc. Separate
/// file because the numbers depend on core count and the loopback stack.
std::string ServingJsonPath();

/// Deterministic tree for benchmarks.
Tree BenchTree(Alphabet* alphabet, int num_nodes, TreeShape shape,
               uint64_t seed, int num_labels = 3);

/// Serialises a (tree, query) pair that failed a bit-for-bit check as a
/// replayable `.case` file (src/testing/corpus.h format, written to the
/// working directory) and returns its path, so bench-found mismatches
/// enter the same replay workflow as fuzzer findings
/// (`xptc_fuzz --replay .`). Returns "" on I/O failure.
std::string DumpMismatchCase(const Tree& tree, const Alphabet& alphabet,
                             const std::string& query_text,
                             const std::string& comment);

/// Formats a double with fixed precision.
std::string Fmt(double value, int precision = 2);

}  // namespace bench
}  // namespace xptc

#endif  // XPTC_BENCH_BENCH_UTIL_H_
