#ifndef XPTC_BENCH_BENCH_UTIL_H_
#define XPTC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/alphabet.h"
#include "common/rng.h"
#include "tree/generate.h"
#include "tree/tree.h"
#include "xpath/ast.h"

namespace xptc {
namespace bench {

/// Prints the experiment banner: id, the paper claim being reproduced, and
/// the protocol, so `bench_output.txt` reads as a self-contained report.
void PrintHeader(const std::string& id, const std::string& claim,
                 const std::string& protocol);

/// Prints a table row of the form "  col1  col2 ..." from preformatted
/// cells (experiment reports are plain fixed-width text).
void PrintRow(const std::vector<std::string>& cells, int width = 14);

/// Wall-clock seconds for one invocation of `fn` (median of `reps` runs).
double MedianSeconds(const std::function<void()>& fn, int reps = 3);

/// Deterministic tree for benchmarks.
Tree BenchTree(Alphabet* alphabet, int num_nodes, TreeShape shape,
               uint64_t seed, int num_labels = 3);

/// Formats a double with fixed precision.
std::string Fmt(double value, int precision = 2);

}  // namespace bench
}  // namespace xptc

#endif  // XPTC_BENCH_BENCH_UTIL_H_
