// E8 — the cost of deciding satisfiability: RegXPath(W) satisfiability is
// decidable but EXPTIME-complete in general [T2 upper-bound machinery].
// The bounded-model procedure exhibits the expected exponential growth:
// the number of candidate models (and hence the time to certify
// bounded-unsatisfiability or find a minimal witness) explodes with the
// model-size bound and the alphabet.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "compile/to_dfta.h"
#include "sat/bounded.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

// φ_k: a chain of k filtered child steps — minimal model has k + 1 nodes,
// so the exhaustive phase must climb to that size.
NodePtr ChainSat(int k, Alphabet* alphabet) {
  std::string text = "<";
  for (int i = 0; i < k; ++i) {
    text += i == 0 ? "child[a]" : "/child[a]";
  }
  text += ">";
  return ParseNode(text, alphabet).ValueOrDie();
}

void WitnessReport() {
  std::printf("\nMinimal-witness search cost for phi_k = "
              "<child[a]/child[a]/.../child[a]> (k steps):\n");
  bench::PrintRow({"k", "witness nodes", "trees examined", "time ms"});
  for (int k = 1; k <= 6; ++k) {
    Alphabet alphabet;
    BoundedSearchOptions options;
    options.exhaustive_max_nodes = k + 1;
    BoundedChecker checker(&alphabet, options);
    NodePtr query = ChainSat(k, &alphabet);
    std::optional<NodeWitness> witness;
    const double seconds = bench::MedianSeconds(
        [&] { witness = checker.FindSatisfying(*query); }, 1);
    bench::PrintRow({std::to_string(k),
                     witness ? std::to_string(witness->tree.size()) : "-",
                     std::to_string(checker.last_trees_examined()),
                     bench::Fmt(seconds * 1e3, 2)});
  }
  std::printf("Expected shape: trees-examined (and time) grow exponentially "
              "with k — the flavour of the EXPTIME bound.\n");
}

void UnsatReport() {
  std::printf("\nBounded-unsat certification cost vs. bound (formula "
              "'a and not a' — no model at any size):\n");
  bench::PrintRow({"bound", "trees examined", "time ms"});
  for (int bound = 3; bound <= 7; ++bound) {
    Alphabet alphabet;
    BoundedSearchOptions options;
    options.exhaustive_max_nodes = bound;
    options.random_rounds = 0;
    BoundedChecker checker(&alphabet, options);
    NodePtr query = ParseNode("a and not a", &alphabet).ValueOrDie();
    const double seconds = bench::MedianSeconds(
        [&] { checker.FindSatisfying(*query); }, 1);
    bench::PrintRow({std::to_string(bound),
                     std::to_string(checker.last_trees_examined()),
                     bench::Fmt(seconds * 1e3, 2)});
  }
}

void ModelCountReport() {
  std::printf("\nExact model counts for phi_k at the root (downward family, "
              "via the NTWA -> DFTA pipeline of E10):\n");
  bench::PrintRow({"k", "models n<=6", "models n<=8", "models n<=10"});
  for (int k = 1; k <= 4; ++k) {
    Alphabet alphabet;
    const std::vector<Symbol> labels = DefaultLabels(&alphabet, 2);
    NodePtr query = ChainSat(k, &alphabet);
    Result<Dfta> dfta = DownwardQueryToDfta(*query, &alphabet, labels);
    if (!dfta.ok()) continue;
    const std::vector<int64_t> counts = dfta->CountAcceptedTrees(10);
    auto cumulative = [&](int up_to) {
      int64_t total = 0;
      for (int n = 0; n <= up_to; ++n) total += counts[static_cast<size_t>(n)];
      return total;
    };
    bench::PrintRow({std::to_string(k), std::to_string(cumulative(6)),
                     std::to_string(cumulative(8)),
                     std::to_string(cumulative(10))});
  }
  std::printf("Expected shape: counts shrink with k (stricter formula) and "
              "explode with the size bound; computed by dynamic "
              "programming, not enumeration.\n");
}

void BM_FindMinimalWitness(benchmark::State& state) {
  Alphabet alphabet;
  BoundedSearchOptions options;
  options.exhaustive_max_nodes = static_cast<int>(state.range(0)) + 1;
  BoundedChecker checker(&alphabet, options);
  NodePtr query = ChainSat(static_cast<int>(state.range(0)), &alphabet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.FindSatisfying(*query));
  }
}
BENCHMARK(BM_FindMinimalWitness)->Arg(2)->Arg(4)->Arg(5);

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E8: bounded-model satisfiability",
      "RegXPath(W) satisfiability is decidable (EXPTIME) [T2]; bounded "
      "search shows the exponential growth in the model-size bound",
      "exhaustive small-model enumeration (complete up to the bound) over "
      "witness-depth and unsat formula families");
  xptc::WitnessReport();
  xptc::UnsatReport();
  xptc::ModelCountReport();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
