// E12 — compiled query execution (src/exec/): DAG bytecode plans and the
// one-pass downward engine vs the PR-1 tree-walking interpreter.
//
// Two claims are measured, both consequences of T2's complexity picture:
//
//  1. DAG collapse: the interpreter re-walks every *occurrence* of a
//     repeated subexpression (pointer-identity memo over a parse tree that
//     duplicates the subtree), while lowering hash-conses the plan so each
//     distinct subexpression is one instruction. On DAG-heavy queries the
//     compiled register machine should be >= 2x the interpreter.
//
//  2. One-pass linearity: for the downward fragment the whole program runs
//     in a single bottom-up sweep over the preorder arrays (the evaluation
//     analogue of DownwardCompiledQueryToDfta) — time per node should stay
//     flat as n grows to 200k (linear combined complexity, no fixpoint
//     iteration at all).
//
// Results are appended to BENCH_compiled.json (schema below); any
// bit-for-bit mismatch between engines dumps a replayable .case file and
// aborts the bench with exit 1.
//
// BENCH_compiled.json section schema ("exp12_compiled"):
//   {"smoke": bool,
//    "dag": {"n": int, "cases": [{"name": str, "ast_nodes": int,
//            "instrs": int, "regs": int, "dag_hits": int, "interp_us": f,
//            "compiled_us": f, "speedup": f, "match": bool}, ...]},
//    "downward": {"cases": [{"query": str, "rows": [{"n": int,
//                 "interp_ms": f, "general_ms": f, "onepass_ms": f,
//                 "onepass_ns_per_node": f, "match": bool}, ...]}, ...]},
//    "compiled_not_slower": bool}   // CI regression gate (see ci.yml)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/engine.h"
#include "obs/metrics.h"
#include "exec/program.h"
#include "xpath/eval.h"
#include "xpath/parser.h"

namespace xptc {
namespace {

// ---------------------------------------------------------------------------
// Part 1: DAG-heavy queries — interpreter vs compiled register machine.
//
// Each case repeats a base subexpression B many times in a boolean
// combination. The parse tree duplicates B per occurrence, so the
// interpreter pays |occurrences| x cost(B); hash-consed lowering computes B
// once. EvalGeneral is forced on the compiled side so the register machine
// itself (not the downward sweep) is what gets measured.

struct DagCase {
  std::string name;
  std::string text;
};

// `(B and a) or (B and not b) or (B and c) or not B` — four pointer-
// distinct occurrences of B per wrap; `wraps` nests the construction.
std::string Duplicate(const std::string& base, int wraps) {
  std::string text = base;
  for (int i = 0; i < wraps; ++i) {
    text = "((" + text + " and a) or (" + text + " and not b) or (" + text +
           " and c) or not " + text + ")";
  }
  return text;
}

std::vector<DagCase> DagCases() {
  const std::string filter_base = "<child[a]/desc[b and <child[c]>]>";
  const std::string star_base = "<(child[a]/desc)*[b]>";
  const std::string mixed_base = "<desc[c]/anc[a]> and <child[b]/foll[c]>";
  return {
      {"dag_filter_x16", Duplicate(filter_base, 2)},
      {"dag_star_x4", Duplicate(star_base, 1)},
      {"dag_mixed_x4", Duplicate(mixed_base, 1)},
  };
}

struct DagResult {
  DagCase dag_case;
  exec::CompileStats stats;
  double interp_seconds = 0;
  double compiled_seconds = 0;
  bool match = false;
};

std::vector<DagResult> DagReport(int n, bool* all_match) {
  std::printf("\nDAG-heavy queries: interpreter vs compiled register "
              "machine (uniform random tree, n = %d):\n", n);
  bench::PrintRow({"case", "|ast|", "instrs", "interp us", "compiled us",
                   "speedup", "match"});
  Alphabet alphabet;
  const Tree tree =
      bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 7);
  // Warm engines on both sides: the interpreter reuses an EvalScratch (its
  // production steady state under BatchEngine), the compiled side reuses
  // one ExecEngine register file; programs are compiled once (the plan-
  // cache steady state).
  EvalScratch scratch(tree);
  exec::ExecEngine engine(tree);
  const int inner = bench::SmokeMode() ? 3 : 10;
  std::vector<DagResult> results;
  for (const DagCase& dag_case : DagCases()) {
    NodePtr query = ParseNode(dag_case.text, &alphabet).ValueOrDie();
    auto program = exec::Program::Compile(query);
    DagResult result;
    result.dag_case = dag_case;
    result.stats = program->stats();
    Bitset interp_bits(0), compiled_bits(0);
    result.interp_seconds = bench::MedianSecondsN(
        [&] {
          Evaluator evaluator(tree, &scratch);
          interp_bits = evaluator.EvalNode(*query);
        },
        inner);
    result.compiled_seconds = bench::MedianSecondsN(
        [&] { compiled_bits = engine.EvalGeneral(*program); }, inner);
    result.match = interp_bits == compiled_bits;
    bench::PrintRow(
        {dag_case.name, std::to_string(result.stats.ast_nodes),
         std::to_string(result.stats.num_instrs),
         bench::Fmt(result.interp_seconds * 1e6, 1),
         bench::Fmt(result.compiled_seconds * 1e6, 1),
         bench::Fmt(result.interp_seconds / result.compiled_seconds, 1),
         result.match ? "yes" : "MISMATCH"});
    if (!result.match) {
      *all_match = false;
      const std::string path = bench::DumpMismatchCase(
          tree, alphabet, dag_case.text,
          "exp12 DAG case: interpreter vs compiled register machine");
      std::fprintf(stderr, "FATAL: engines disagree on %s (case: %s)\n",
                   dag_case.name.c_str(), path.c_str());
    }
    results.push_back(std::move(result));
  }
  std::printf("Expected shape: speedup >= 2 on every case — the interpreter "
              "re-evaluates each textual occurrence of the repeated "
              "subexpression, the compiled plan computes it once.\n");
  return results;
}

// ---------------------------------------------------------------------------
// Part 2: the one-pass downward engine — n vs time up to 200k nodes.

struct DownwardRow {
  int n = 0;
  double interp_seconds = 0;
  double general_seconds = 0;
  double onepass_seconds = 0;
  double hybrid_seconds = 0;  // Eval: the default compiled dispatch
  bool match = false;
};

struct DownwardCase {
  std::string name;
  std::string text;
  std::vector<DownwardRow> rows;
};

std::vector<DownwardCase> DownwardReport(bool* all_match) {
  std::vector<DownwardCase> cases = {
      {"down_boolean", "<child[a]/desc[b]> and not <dos[c]>", {}},
      {"down_star", "<(child[a])*[b]> or <desc[c and <child[a]>]>", {}},
  };
  std::vector<int> sizes = {12500, 25000, 50000, 100000, 200000};
  if (bench::SmokeMode()) sizes = {1000, 4000};
  Alphabet alphabet;
  for (DownwardCase& down_case : cases) {
    std::printf("\nOne-pass downward engine, query %s:\n",
                down_case.name.c_str());
    bench::PrintRow({"n", "interp ms", "general ms", "one-pass ms",
                     "hybrid ms", "1p ns/node", "match"});
    NodePtr query = ParseNode(down_case.text, &alphabet).ValueOrDie();
    auto program = exec::Program::Compile(query);
    if (program->downward() == nullptr) {
      std::fprintf(stderr, "FATAL: %s did not compile downward\n",
                   down_case.text.c_str());
      std::exit(1);
    }
    for (int n : sizes) {
      const Tree tree =
          bench::BenchTree(&alphabet, n, TreeShape::kUniformRecursive, 5);
      EvalScratch scratch(tree);
      exec::ExecEngine engine(tree);
      DownwardRow row;
      row.n = n;
      Bitset interp_bits(0), general_bits(0), onepass_bits(0),
          hybrid_bits(0);
      row.interp_seconds = bench::MedianSeconds([&] {
        Evaluator evaluator(tree, &scratch);
        interp_bits = evaluator.EvalNode(*query);
      });
      row.general_seconds = bench::MedianSeconds(
          [&] { general_bits = engine.EvalGeneral(*program); });
      row.onepass_seconds = bench::MedianSeconds(
          [&] { onepass_bits = engine.EvalDownward(*program); });
      row.hybrid_seconds = bench::MedianSeconds(
          [&] { hybrid_bits = engine.Eval(*program); });
      row.match = interp_bits == general_bits &&
                  interp_bits == onepass_bits && interp_bits == hybrid_bits;
      bench::PrintRow({std::to_string(n),
                       bench::Fmt(row.interp_seconds * 1e3, 3),
                       bench::Fmt(row.general_seconds * 1e3, 3),
                       bench::Fmt(row.onepass_seconds * 1e3, 3),
                       bench::Fmt(row.hybrid_seconds * 1e3, 3),
                       bench::Fmt(row.onepass_seconds / n * 1e9, 1),
                       row.match ? "yes" : "MISMATCH"});
      if (!row.match) {
        *all_match = false;
        const std::string path = bench::DumpMismatchCase(
            tree, alphabet, down_case.text,
            "exp12 downward case: interpreter vs compiled engines");
        std::fprintf(stderr, "FATAL: engines disagree on %s at n=%d (%s)\n",
                     down_case.name.c_str(), n, path.c_str());
      }
      down_case.rows.push_back(row);
    }
  }
  std::printf("\nExpected shape: the one-pass ns/node column stays flat as "
              "n grows 16x — T2's linear combined complexity realised as a "
              "single bottom-up sweep (%d-ish word-ops per node, no "
              "fixpoint iteration).\n", 32);
  return cases;
}

// ---------------------------------------------------------------------------
// Part 3: the adversarial regime — deep chains with a sparse star seed.
//
// `(child)*[b]` where only the deepest node is labelled b forces the
// set-based fixpoint engines (interpreter and register machine alike)
// through ~depth rounds of full-bitset work: Θ(n²/64). The one-pass sweep
// is unconditionally linear, and `Eval`'s hybrid dispatch must detect the
// blown star-round budget and land there.

struct AdversarialRow {
  int n = 0;
  double interp_seconds = 0;
  double general_seconds = 0;
  double onepass_seconds = 0;
  double hybrid_seconds = 0;
  bool match = false;
  bool fell_back = false;  // hybrid ended in the one-pass sweep
};

std::vector<AdversarialRow> AdversarialReport(bool* all_match) {
  std::printf("\nAdversarial deep chains, sparse star seed "
              "(<(child)*[b]>, only the deepest node is b):\n");
  bench::PrintRow({"n", "interp ms", "general ms", "one-pass ms",
                   "hybrid ms", "fell back", "match"});
  Alphabet alphabet;
  const Symbol a = alphabet.Intern("a");
  const Symbol b = alphabet.Intern("b");
  const std::string text = "<(child)*[b]>";
  NodePtr query = ParseNode(text, &alphabet).ValueOrDie();
  auto program = exec::Program::Compile(query);
  std::vector<int> sizes = {4000, 16000, 64000};
  if (bench::SmokeMode()) sizes = {1000, 4000};
  std::vector<AdversarialRow> rows;
  for (int n : sizes) {
    TreeBuilder builder;
    for (int i = 0; i < n; ++i) builder.Begin(i == n - 1 ? b : a);
    for (int i = 0; i < n; ++i) builder.End();
    const Tree tree = std::move(builder).Finish().ValueOrDie();
    EvalScratch scratch(tree);
    exec::ExecEngine engine(tree);
    AdversarialRow row;
    row.n = n;
    Bitset interp_bits(0), general_bits(0), onepass_bits(0), hybrid_bits(0);
    // The quadratic engines get one rep (minutes-scale otherwise).
    row.interp_seconds = bench::MedianSeconds(
        [&] {
          Evaluator evaluator(tree, &scratch);
          interp_bits = evaluator.EvalNode(*query);
        },
        1);
    row.general_seconds = bench::MedianSeconds(
        [&] { general_bits = engine.EvalGeneral(*program); }, 1);
    row.onepass_seconds = bench::MedianSeconds(
        [&] { onepass_bits = engine.EvalDownward(*program); });
    row.hybrid_seconds = bench::MedianSeconds(
        [&] { hybrid_bits = engine.Eval(*program); });
    row.fell_back = engine.last_used_downward();
    row.match = interp_bits == general_bits &&
                interp_bits == onepass_bits && interp_bits == hybrid_bits;
    bench::PrintRow({std::to_string(n),
                     bench::Fmt(row.interp_seconds * 1e3, 2),
                     bench::Fmt(row.general_seconds * 1e3, 2),
                     bench::Fmt(row.onepass_seconds * 1e3, 3),
                     bench::Fmt(row.hybrid_seconds * 1e3, 3),
                     row.fell_back ? "yes" : "NO",
                     row.match ? "yes" : "MISMATCH"});
    if (!row.match) {
      *all_match = false;
      const std::string path = bench::DumpMismatchCase(
          tree, alphabet, text, "exp12 adversarial chain case");
      std::fprintf(stderr, "FATAL: engines disagree at n=%d (%s)\n", n,
                   path.c_str());
    }
    rows.push_back(row);
  }
  std::printf("Expected shape: interp/general columns grow ~quadratically, "
              "one-pass and hybrid stay linear; the hybrid must report "
              "falling back on every row.\n");
  return rows;
}

// ---------------------------------------------------------------------------
// JSON section.

std::string SectionJson(const std::vector<DagResult>& dag, int dag_n,
                        const std::vector<DownwardCase>& downward,
                        const std::vector<AdversarialRow>& adversarial,
                        bool compiled_not_slower) {
  std::ostringstream os;
  os << "{\"smoke\": " << (bench::SmokeMode() ? "true" : "false");
  os << ", \"dag\": {\"n\": " << dag_n << ", \"cases\": [";
  for (size_t i = 0; i < dag.size(); ++i) {
    const DagResult& r = dag[i];
    if (i > 0) os << ", ";
    os << "{\"name\": \"" << r.dag_case.name << "\""
       << ", \"ast_nodes\": " << r.stats.ast_nodes
       << ", \"instrs\": " << r.stats.num_instrs
       << ", \"regs\": " << r.stats.num_regs
       << ", \"dag_hits\": " << r.stats.dag_hits
       << ", \"interp_us\": " << bench::Fmt(r.interp_seconds * 1e6, 2)
       << ", \"compiled_us\": " << bench::Fmt(r.compiled_seconds * 1e6, 2)
       << ", \"speedup\": "
       << bench::Fmt(r.interp_seconds / r.compiled_seconds, 2)
       << ", \"match\": " << (r.match ? "true" : "false") << "}";
  }
  os << "]}, \"downward\": {\"cases\": [";
  for (size_t c = 0; c < downward.size(); ++c) {
    const DownwardCase& down_case = downward[c];
    if (c > 0) os << ", ";
    os << "{\"query\": \"" << down_case.name << "\", \"rows\": [";
    for (size_t i = 0; i < down_case.rows.size(); ++i) {
      const DownwardRow& row = down_case.rows[i];
      if (i > 0) os << ", ";
      os << "{\"n\": " << row.n
         << ", \"interp_ms\": " << bench::Fmt(row.interp_seconds * 1e3, 4)
         << ", \"general_ms\": " << bench::Fmt(row.general_seconds * 1e3, 4)
         << ", \"onepass_ms\": " << bench::Fmt(row.onepass_seconds * 1e3, 4)
         << ", \"hybrid_ms\": " << bench::Fmt(row.hybrid_seconds * 1e3, 4)
         << ", \"onepass_ns_per_node\": "
         << bench::Fmt(row.onepass_seconds / row.n * 1e9, 2)
         << ", \"match\": " << (row.match ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "]}, \"adversarial\": {\"query\": \"(child)*[b] sparse chain\", "
     << "\"rows\": [";
  for (size_t i = 0; i < adversarial.size(); ++i) {
    const AdversarialRow& row = adversarial[i];
    if (i > 0) os << ", ";
    os << "{\"n\": " << row.n
       << ", \"interp_ms\": " << bench::Fmt(row.interp_seconds * 1e3, 3)
       << ", \"general_ms\": " << bench::Fmt(row.general_seconds * 1e3, 3)
       << ", \"onepass_ms\": " << bench::Fmt(row.onepass_seconds * 1e3, 4)
       << ", \"hybrid_ms\": " << bench::Fmt(row.hybrid_seconds * 1e3, 4)
       << ", \"fell_back\": " << (row.fell_back ? "true" : "false")
       << ", \"match\": " << (row.match ? "true" : "false") << "}";
  }
  os << "]}, \"compiled_not_slower\": "
     << (compiled_not_slower ? "true" : "false") << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registered microbenchmarks (complexity fits on demand).

void BM_CompiledGeneral(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query =
      ParseNode(Duplicate("<child[a]/desc[b and <child[c]>]>", 2), &alphabet)
          .ValueOrDie();
  auto program = exec::Program::Compile(query);
  const Tree tree = bench::BenchTree(
      &alphabet, static_cast<int>(state.range(0)),
      TreeShape::kUniformRecursive, 5);
  exec::ExecEngine engine(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalGeneral(*program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompiledGeneral)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity();

void BM_DownwardSweep(benchmark::State& state) {
  Alphabet alphabet;
  NodePtr query =
      ParseNode("<(child[a])*[b]> or <desc[c and <child[a]>]>", &alphabet)
          .ValueOrDie();
  auto program = exec::Program::Compile(query);
  const Tree tree = bench::BenchTree(
      &alphabet, static_cast<int>(state.range(0)),
      TreeShape::kUniformRecursive, 5);
  exec::ExecEngine engine(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalDownward(*program));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DownwardSweep)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity();

}  // namespace
}  // namespace xptc

int main(int argc, char** argv) {
  xptc::bench::PrintHeader(
      "E12: compiled query execution",
      "lowering to DAG bytecode makes evaluation cost track distinct "
      "subexpressions, and the downward fragment runs in one linear "
      "bottom-up sweep [T2]",
      "DAG-heavy queries interpreter-vs-compiled at fixed n; downward "
      "queries interpreter vs register machine vs one-pass sweep on "
      "uniform trees n = 12.5k..200k");
  const int dag_n = xptc::bench::SmokeMode() ? 2000 : 50000;
  bool all_match = true;
  const auto dag = xptc::DagReport(dag_n, &all_match);
  const auto downward = xptc::DownwardReport(&all_match);
  const auto adversarial = xptc::AdversarialReport(&all_match);
  // Regression gate (see ci.yml): total time of the *default* compiled
  // dispatch (register machine for DAG cases, Eval's hybrid for downward
  // cases) must not exceed the PR-1 interpreter on the same workload.
  double interp_total = 0, compiled_total = 0;
  for (const auto& r : dag) {
    interp_total += r.interp_seconds;
    compiled_total += r.compiled_seconds;
  }
  for (const auto& down_case : downward) {
    for (const auto& row : down_case.rows) {
      interp_total += row.interp_seconds;
      compiled_total += row.hybrid_seconds;
    }
  }
  for (const auto& row : adversarial) {
    interp_total += row.interp_seconds;
    compiled_total += row.hybrid_seconds;
  }
  const bool compiled_not_slower = compiled_total <= interp_total;
  xptc::bench::UpdateBenchJson(
      xptc::bench::CompiledJsonPath(), "exp12_compiled",
      xptc::SectionJson(dag, dag_n, downward, adversarial,
                        compiled_not_slower));
  // The full registry export rides along (dispatch counts, star rounds,
  // instruction totals for every run above) — the section's counter-valued
  // fields are a named slice of these.
  xptc::bench::UpdateBenchJson(xptc::bench::CompiledJsonPath(),
                               "obs_registry",
                               xptc::obs::Registry::Default().Json());
  std::printf("(recorded in %s)\n", xptc::bench::CompiledJsonPath().c_str());
  if (!all_match) return 1;
  if (!compiled_not_slower) {
    std::fprintf(stderr,
                 "FATAL: compiled engines slower than the interpreter in "
                 "aggregate (%.3f ms vs %.3f ms)\n",
                 compiled_total * 1e3, interp_total * 1e3);
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
